"""Tests for the synthetic workload generators used by the benchmarks."""

import random

import pytest

from repro import faults
from repro.citation.conflict import NewestStrategy
from repro.citation.operators import AddCite, DelCite, GenCite, ModifyCite, apply_operations
from repro.cli.storage import load_repository, save_repository
from repro.errors import TransportError
from repro.faults import SimulatedCrash
from repro.vcs.fsck import fsck_working_copy
from repro.workloads.generator import (
    STORAGE_FAILPOINTS,
    FaultEvent,
    WorkloadConfig,
    generate_branch_pair,
    generate_citation,
    generate_citation_function,
    generate_fault_schedule,
    generate_history,
    generate_operation_trace,
    generate_repository,
    generate_tree_paths,
)


class TestPrimitiveGenerators:
    def test_tree_paths_are_distinct_and_respect_count(self):
        rng = random.Random(1)
        paths = generate_tree_paths(rng, 200, max_depth=4)
        assert len(paths) == len(set(paths)) == 200
        assert all(path.startswith("/") for path in paths)
        assert max(path.count("/") for path in paths) <= 5  # depth bound plus the file itself

    def test_tree_paths_deterministic_per_seed(self):
        assert generate_tree_paths(random.Random(5), 50) == generate_tree_paths(random.Random(5), 50)
        assert generate_tree_paths(random.Random(5), 50) != generate_tree_paths(random.Random(6), 50)

    def test_generate_citation_is_valid_and_seeded(self):
        first = generate_citation(random.Random(3))
        second = generate_citation(random.Random(3))
        assert first == second
        assert first.authors and first.url.startswith("https://")

    def test_citation_function_density(self):
        rng = random.Random(2)
        paths = generate_tree_paths(rng, 100)
        function, cited = generate_citation_function(random.Random(2), paths, density=0.2)
        assert function.has_root
        assert len(cited) == len(function) - 1
        assert 0 < len(cited) <= int(0.2 * (len(paths) * 2)) + 1

    def test_zero_density_means_root_only(self):
        paths = generate_tree_paths(random.Random(4), 30)
        function, cited = generate_citation_function(random.Random(4), paths, density=0.0)
        assert cited == [] and function.active_domain() == ["/"]


class TestRepositoryWorkloads:
    def test_generate_repository_matches_config(self):
        workload = generate_repository(WorkloadConfig(seed=11, num_files=40, citation_density=0.25))
        assert len(workload.file_paths) == 40
        assert workload.repo.head_oid() is not None
        assert workload.manager.validate().is_consistent
        assert len(workload.cited_paths) == len(workload.citation_function) - 1

    def test_generation_is_reproducible(self):
        config = WorkloadConfig(seed=21, num_files=30)
        first = generate_repository(config)
        second = generate_repository(config)
        assert first.file_paths == second.file_paths
        assert first.repo.head_oid() == second.repo.head_oid()

    def test_generate_history_extends_the_repo(self):
        workload = generate_repository(WorkloadConfig(seed=8, num_files=20))
        before = len(workload.repo.log())
        commits = generate_history(workload, num_commits=5)
        assert len(commits) == 5
        assert len(workload.repo.log()) == before + 5

    def test_branch_pair_has_requested_conflicts(self):
        pair = generate_branch_pair(
            WorkloadConfig(seed=13, num_files=80), citations_per_branch=12, conflict_fraction=0.5
        )
        assert len(pair.conflicting_paths) == 6
        assert pair.repo.current_branch == pair.ours_branch
        outcome = pair.manager.merge_cite(pair.theirs_branch, strategy=NewestStrategy())
        assert sorted(c.path for c in outcome.citation_result.conflicts) == pair.conflicting_paths
        # Non-conflicting citations from both branches survive the union.
        merged = outcome.citation_result.function
        for path in pair.ours_only_paths + pair.theirs_only_paths:
            assert path in merged


class TestOperationTraces:
    def test_trace_is_valid_by_construction(self):
        workload = generate_repository(WorkloadConfig(seed=17, num_files=60, citation_density=0.1))
        trace = generate_operation_trace(workload, 200)
        assert len(trace) == 200
        # Replaying the trace never raises (AddCite/DelCite/ModifyCite validity).
        results = apply_operations(workload.citation_function.copy()
                                   if False else workload.manager.citation_function(), trace)
        assert len(results) == 200

    def test_trace_respects_mix(self):
        workload = generate_repository(WorkloadConfig(seed=19, num_files=50, citation_density=0.2))
        trace = generate_operation_trace(workload, 150, mix={"generate": 1.0})
        assert all(isinstance(op, GenCite) for op in trace)

    def test_trace_contains_all_kinds_with_default_mix(self):
        workload = generate_repository(WorkloadConfig(seed=23, num_files=80, citation_density=0.2))
        trace = generate_operation_trace(workload, 300)
        kinds = {type(op) for op in trace}
        assert kinds >= {AddCite, DelCite, ModifyCite, GenCite}

    def test_trace_is_deterministic(self):
        workload = generate_repository(WorkloadConfig(seed=29, num_files=40, citation_density=0.2))
        assert generate_operation_trace(workload, 50) == generate_operation_trace(workload, 50)


class TestFleetFaultSchedules:
    @pytest.fixture(autouse=True)
    def _clean_faults(self):
        faults.reset()
        yield
        faults.reset()

    def test_schedule_is_deterministic_per_seed(self):
        config = WorkloadConfig(seed=31)
        assert generate_fault_schedule(config) == generate_fault_schedule(config)
        assert generate_fault_schedule(config) != generate_fault_schedule(WorkloadConfig(seed=32))

    def test_schedule_shape_and_validity(self):
        schedule = generate_fault_schedule(
            WorkloadConfig(seed=37), fleet_size=6, faults_per_member=3, max_hit=5
        )
        assert schedule.fleet_size == 6
        assert len(schedule.events) == 18
        registered = set(faults.registered_failpoints())
        for event in schedule.events:
            assert 0 <= event.member < 6
            assert event.failpoint in registered
            assert 1 <= event.at <= 5
            assert event.keep >= 0 and event.offset >= 0
        # Every member got its deal, and the deals partition the events.
        deals = [schedule.for_member(m) for m in range(6)]
        assert all(len(deal) == 3 for deal in deals)
        assert sorted((e for deal in deals for e in deal), key=str) == sorted(schedule.events, key=str)

    def test_unknown_failpoint_is_rejected(self):
        with pytest.raises(ValueError):
            generate_fault_schedule(WorkloadConfig(seed=1), failpoints=("no.such.site",))

    def test_restricting_sites_restricts_the_schedule(self):
        schedule = generate_fault_schedule(
            WorkloadConfig(seed=41), fleet_size=8, failpoints=STORAGE_FAILPOINTS
        )
        assert {e.failpoint for e in schedule.events} <= set(STORAGE_FAILPOINTS)
        assert {e.action for e in schedule.events} <= {"crash", "truncate", "flip"}

    def test_armed_event_triggers_at_its_hit_index(self):
        event = FaultEvent(member=0, failpoint="state.save", action="crash", at=2)
        event.arm()
        assert faults.consume("state.save") is None  # hit 1: below `at`
        action = faults.consume("state.save")  # hit 2: triggers, once
        assert action is not None and action.kind == "crash"
        assert faults.consume("state.save") is None  # times=1: spent

    def test_armed_error_event_raises_transport_error(self):
        event = FaultEvent(member=0, failpoint="wire.request", action="error", at=1)
        event.arm()
        with pytest.raises(TransportError):
            faults.fire("wire.request")

    def test_fleet_member_crash_recovers_with_fsck(self, tmp_path):
        # One member of the fleet replayed end to end: generate, persist,
        # arm the member's crash, die mid-save, recover, verify integrity.
        workload = generate_repository(WorkloadConfig(seed=43, num_files=12))
        save_repository(workload.repo, tmp_path, storage="pack")
        before = load_repository(tmp_path).head_oid()
        faults.reset()
        FaultEvent(member=0, failpoint="state.save", action="truncate", at=1, keep=9).arm()
        workload.repo.write_file("/crash.txt", "doomed\n")
        workload.repo.commit("never durable", author_name="alice")
        with pytest.raises(SimulatedCrash):
            save_repository(workload.repo, tmp_path)
        faults.reset()
        report = fsck_working_copy(tmp_path)
        assert report.ok
        assert load_repository(tmp_path).head_oid() == before
