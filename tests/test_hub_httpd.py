"""End-to-end tests for the hub over a real TCP socket.

Everything here exercises :class:`~repro.hub.httpd.HubHttpServer` on a live
ephemeral port: raw wire behaviour (statuses, auth header parsing, malformed
bodies), the :class:`~repro.hub.httpd.HttpTransport` drop-in transport, and
the full clone → commit → push round trip through
:class:`~repro.hub.sync.HubRemote` — the same code paths the in-process
tests cover, now with a genuine socket in the middle.
"""

import json
import os
import signal
import subprocess
import sys
import threading
from http.client import HTTPConnection
from pathlib import Path

import pytest

from repro.errors import TransportError
from repro.hub.api import RestApi
from repro.hub.httpd import HttpTransport, HubHttpServer, serve_platform
from repro.hub.retry import RetryingApi, RetryPolicy
from repro.hub.server import HostingPlatform


@pytest.fixture
def platform(enabled_manager) -> HostingPlatform:
    platform = HostingPlatform()
    platform.register_user("alice", name="Alice Smith")
    platform.register_user("bob", name="Bob Jones")
    platform.host_repository(enabled_manager.repo)
    return platform


@pytest.fixture
def alice_token(platform) -> str:
    return platform.issue_token("alice").value


@pytest.fixture
def server(platform):
    """The platform's REST API live on an ephemeral local port."""
    with HubHttpServer(RestApi(platform)) as served:
        yield served


@pytest.fixture
def wire(server) -> HttpTransport:
    return HttpTransport(server.url)


class TestServerBasics:
    def test_binds_ephemeral_port_and_reports_url(self, server):
        assert server.port > 0
        assert server.url == f"http://127.0.0.1:{server.port}"

    def test_refs_over_the_socket(self, wire):
        response = wire.get("/repos/alice/demo/git/refs")
        assert response.status == 200
        assert "main" in {branch["name"] for branch in response.json["branches"]}

    def test_unknown_repository_is_404(self, wire):
        response = wire.get("/repos/alice/nope/git/refs")
        assert response.status == 404
        assert response.json["retryable"] is False

    def test_invalid_token_is_401(self, wire):
        response = wire.get("/repos/alice/demo", token="ghs_bogus")
        assert response.status == 401

    def test_token_and_bearer_auth_schemes(self, server, wire, alice_token):
        for scheme in ("token", "Bearer"):
            connection = HTTPConnection(server.host, server.port, timeout=10)
            try:
                connection.request(
                    "GET", "/user", headers={"Authorization": f"{scheme} {alice_token}"}
                )
                response = connection.getresponse()
                body = json.loads(response.read())
            finally:
                connection.close()
            assert response.status == 200
            assert body["login"] == "alice"

    def test_malformed_json_body_is_400(self, server):
        connection = HTTPConnection(server.host, server.port, timeout=10)
        try:
            connection.request(
                "POST", "/repos/alice/demo/git/upload-pack", body=b"{not json",
                headers={"Content-Type": "application/json", "Content-Length": "9"},
            )
            response = connection.getresponse()
            body = json.loads(response.read())
        finally:
            connection.close()
        assert response.status == 400
        assert body["retryable"] is False

    def test_non_object_json_body_is_422(self, server):
        payload = b'["not", "an", "object"]'
        connection = HTTPConnection(server.host, server.port, timeout=10)
        try:
            connection.request(
                "POST", "/repos/alice/demo/git/upload-pack", body=payload,
                headers={"Content-Type": "application/json",
                         "Content-Length": str(len(payload))},
            )
            response = connection.getresponse()
            body = json.loads(response.read())
        finally:
            connection.close()
        assert response.status == 422

    def test_connection_refused_raises_transport_error(self, platform):
        stopped = serve_platform(platform)
        url = stopped.url
        stopped.stop()
        with pytest.raises(TransportError):
            HttpTransport(url, timeout=2).get("/repos/alice/demo")

    def test_concurrent_requests_all_answered(self, wire):
        statuses = []
        lock = threading.Lock()

        def fetch():
            response = wire.get("/repos/alice/demo/git/refs")
            with lock:
                statuses.append(response.status)

        threads = [threading.Thread(target=fetch) for _ in range(12)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert statuses == [200] * 12


class TestRemoteOverSocket:
    """HubRemote + RetryingApi running over the real wire."""

    @pytest.fixture
    def remote(self, wire, alice_token):
        from repro.hub.sync import HubRemote

        api = RetryingApi(wire, RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0))
        return HubRemote(api, "alice/demo", token=alice_token)

    def test_clone_over_socket_matches_hosted_content(self, remote, platform):
        clone = remote.clone()
        hosted = platform.repositories["alice/demo"].repo
        assert clone.refs.branches == hosted.refs.branches
        assert clone.read_file("README.md") == hosted.read_file("README.md")

    def test_push_over_socket_advances_remote_tip(self, remote, platform):
        clone = remote.clone()
        clone.write_file("pushed.txt", "over a real socket\n")
        new_tip = clone.commit("add pushed.txt", author_name="alice")
        report = remote.push(clone, "main")
        assert report["updated"] == {"main": new_tip}
        assert report["objects_added"] > 0
        hosted = platform.repositories["alice/demo"].repo
        assert hosted.refs.branch_target("main") == new_tip

    def test_push_retry_after_landed_response_is_noop(self, remote):
        clone = remote.clone()
        clone.write_file("idem.txt", "once\n")
        clone.commit("add idem.txt", author_name="alice")
        first = remote.push(clone, "main")
        assert first["objects_added"] > 0
        # Re-send the identical push, as RetryingApi would after a lost
        # response: idempotent apply, zero new objects, same tip.
        second = remote.push(clone, "main")
        assert second["objects_added"] == 0

    def test_pull_over_socket_fast_forwards(self, remote, platform):
        clone = remote.clone()
        hosted = platform.repositories["alice/demo"].repo
        hosted.write_file("upstream.txt", "server-side change\n")
        upstream_tip = hosted.commit("server-side commit", author_name="alice")
        assert remote.pull(clone, "main") == upstream_tip
        assert clone.read_file("upstream.txt") == b"server-side change\n"


class TestServeCommand:
    def _build_working_copy(self, tmp_path: Path) -> Path:
        from repro.cli.main import main

        directory = tmp_path / "proj"
        directory.mkdir()
        (directory / "README.md").write_text("# served\n")
        assert main(["init", "-C", str(directory), "--owner", "alice",
                     "--name", "proj"]) == 0
        return directory

    def test_serve_hosts_working_copy_over_tcp(self, tmp_path):
        directory = self._build_working_copy(tmp_path)
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli.main", "serve",
             "-C", str(directory), "--port", "0"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            banner = process.stdout.readline().strip()
            assert banner.startswith("serving alice/proj on http://")
            url = banner.rsplit(" ", 1)[1]
            token_line = process.stdout.readline()
            token = token_line.rsplit(" ", 1)[1].strip()
            wire = HttpTransport(url, timeout=10)
            refs = wire.get("/repos/alice/proj/git/refs")
            assert refs.status == 200
            assert "main" in {branch["name"] for branch in refs.json["branches"]}
            authed = wire.get("/user", token=token)
            assert authed.status == 200 and authed.json["login"] == "alice"
        finally:
            process.send_signal(signal.SIGINT)
            out, err = process.communicate(timeout=30)
        assert process.returncode == 0, err
        assert "stopped; alice/proj saved" in out
