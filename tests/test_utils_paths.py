"""Unit tests for repository path handling (repro.utils.paths)."""

import pytest

from repro.errors import InvalidPathError
from repro.utils.paths import (
    ROOT,
    RepoPath,
    ancestors,
    common_prefix,
    is_ancestor,
    is_dir_key,
    join_path,
    normalize_path,
    path_basename,
    path_depth,
    path_parent,
    relative_to,
    rewrite_prefix,
    split_path,
    to_citation_key,
)


class TestNormalizePath:
    def test_root_forms(self):
        for raw in ("/", "", ".", "./", "   "):
            assert normalize_path(raw) == ROOT

    def test_strips_trailing_slash(self):
        assert normalize_path("a/b/") == "/a/b"

    def test_adds_leading_slash(self):
        assert normalize_path("a/b") == "/a/b"

    def test_collapses_dot_and_empty_components(self):
        assert normalize_path("./a//b/./c") == "/a/b/c"

    def test_listing1_ellipsis_prefix(self):
        # Listing 1 writes nested keys as ".../CoreCover/".
        assert normalize_path(".../CoreCover/") == "/CoreCover"
        assert normalize_path(".../citation/GUI/") == "/citation/GUI"

    def test_rejects_parent_escapes(self):
        with pytest.raises(InvalidPathError):
            normalize_path("../outside")

    def test_rejects_backslash(self):
        with pytest.raises(InvalidPathError):
            normalize_path("a\\b")

    def test_rejects_non_string(self):
        with pytest.raises(InvalidPathError):
            normalize_path(42)  # type: ignore[arg-type]

    def test_idempotent(self):
        assert normalize_path(normalize_path("x/y/z/")) == "/x/y/z"


class TestSplitJoin:
    def test_split_root(self):
        assert split_path("/") == ()

    def test_split_nested(self):
        assert split_path("/a/b/c") == ("a", "b", "c")

    def test_join_simple(self):
        assert join_path("/a", "b", "c") == "/a/b/c"

    def test_join_with_root_base(self):
        assert join_path("/", "x") == "/x"

    def test_join_of_nothing_is_root(self):
        assert join_path("/") == ROOT

    def test_parent_and_basename(self):
        assert path_parent("/a/b/c") == "/a/b"
        assert path_parent("/a") == ROOT
        assert path_parent("/") == ROOT
        assert path_basename("/a/b/c") == "c"
        assert path_basename("/") == ""

    def test_depth(self):
        assert path_depth("/") == 0
        assert path_depth("/a") == 1
        assert path_depth("/a/b/c") == 3


class TestAncestors:
    def test_closest_first_ordering(self):
        assert ancestors("/a/b/c") == ["/a/b", "/a", "/"]

    def test_include_self(self):
        assert ancestors("/a/b", include_self=True) == ["/a/b", "/a", "/"]

    def test_root_ancestors(self):
        assert ancestors("/") == ["/"]
        assert ancestors("/", include_self=True) == ["/"]

    def test_top_level_file(self):
        assert ancestors("/f1.py") == ["/"]

    def test_is_ancestor_strict(self):
        assert is_ancestor("/a", "/a/b")
        assert not is_ancestor("/a", "/a")
        assert is_ancestor("/a", "/a", strict=False)
        assert not is_ancestor("/a/b", "/a")
        assert is_ancestor("/", "/anything")

    def test_sibling_prefix_is_not_ancestor(self):
        assert not is_ancestor("/ab", "/abc")


class TestRelativeAndRewrite:
    def test_relative_to(self):
        assert relative_to("/a/b/c", "/a") == "b/c"
        assert relative_to("/a", "/a") == ""
        assert relative_to("/a/b", "/") == "a/b"

    def test_relative_to_error(self):
        with pytest.raises(InvalidPathError):
            relative_to("/x/y", "/a")

    def test_rewrite_prefix(self):
        assert rewrite_prefix("/green/f2.py", "/green", "/imported/green") == "/imported/green/f2.py"

    def test_rewrite_prefix_of_the_prefix_itself(self):
        assert rewrite_prefix("/green", "/green", "/new") == "/new"

    def test_rewrite_from_root(self):
        assert rewrite_prefix("/a/b", "/", "/sub") == "/sub/a/b"

    def test_common_prefix(self):
        assert common_prefix(["/a/b/c", "/a/b/d", "/a/b"]) == "/a/b"
        assert common_prefix(["/a", "/b"]) == "/"
        assert common_prefix([]) == "/"


class TestCitationKeys:
    def test_root_key(self):
        assert to_citation_key("/", True) == "/"

    def test_directory_key_has_trailing_slash(self):
        assert to_citation_key("/CoreCover", True) == "/CoreCover/"

    def test_file_key_has_no_trailing_slash(self):
        assert to_citation_key("/src/main.py", False) == "/src/main.py"

    def test_is_dir_key(self):
        assert is_dir_key("/CoreCover/")
        assert is_dir_key("/")
        assert not is_dir_key("/main.py")


class TestRepoPath:
    def test_normalises_on_construction(self):
        assert str(RepoPath("a/b/")) == "/a/b"

    def test_parts_parent_name_depth(self):
        path = RepoPath("/a/b/c")
        assert path.parts == ("a", "b", "c")
        assert str(path.parent) == "/a/b"
        assert path.name == "c"
        assert path.depth == 3

    def test_joinpath_and_ancestors(self):
        path = RepoPath("/a").joinpath("b", "c")
        assert str(path) == "/a/b/c"
        assert [str(p) for p in path.ancestors()] == ["/a/b", "/a", "/"]

    def test_is_ancestor_of(self):
        assert RepoPath("/a").is_ancestor_of("/a/b")
        assert not RepoPath("/a/b").is_ancestor_of(RepoPath("/a"))

    def test_relative_to(self):
        assert RepoPath("/a/b/c").relative_to("/a") == "b/c"

    def test_ordering_and_equality(self):
        assert RepoPath("/a") == RepoPath("a/")
        assert RepoPath("/a") < RepoPath("/b")
