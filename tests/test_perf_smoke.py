"""Deterministic hot-path regression checks (``perf_smoke`` marker).

These tests pin the *mechanisms* behind the performance work — subtree-oid
reuse in ``write_tree``, the bisect-backed object-id prefix index, the
citation parse cache, and the range-scan citation index — via call counts and
object identity, never wall-clock timing, so tier-1 fails deterministically
when a hot path regresses to its old complexity.

Run just these with ``pytest -m perf_smoke``.
"""

from __future__ import annotations

import pytest

from repro.citation.function import CitationFunction
from repro.citation.manager import CitationManager
from repro.citation.record import Citation
from repro.errors import ObjectNotFoundError
from repro.utils.timeutil import now_utc
from repro.vcs.object_store import ObjectStore
from repro.vcs.objects import Blob, Tree
from repro.vcs.repository import Repository
from repro.vcs.treeops import subtree_oid

pytestmark = pytest.mark.perf_smoke


def _citation(tag: str) -> Citation:
    return Citation(
        repo_name="perf",
        owner="alice",
        committed_date=now_utc(),
        commit_id="0000000",
        url=f"https://example.org/alice/perf#{tag}",
        authors=("alice",),
    )


class TestWriteTreeReuse:
    def test_unchanged_subtrees_reuse_their_oids(self):
        repo = Repository.init("perf", "alice")
        for i in range(5):
            repo.write_file(f"/a/f{i}.txt", f"a{i}\n")
            repo.write_file(f"/b/f{i}.txt", f"b{i}\n")
        first = repo.commit("seed")
        stats = repo.index.last_write_tree_stats
        assert stats == {"built": 3, "reused": 0}  # '/', '/a', '/b'
        b_before = subtree_oid(repo.store, repo.store.get_commit(first).tree_oid, "/b")

        repo.write_file("/a/f0.txt", "changed\n")
        second = repo.commit("edit under /a")
        stats = repo.index.last_write_tree_stats
        assert stats["reused"] == 1  # '/b' emitted from the cache
        assert stats["built"] == 2  # only '/' and '/a' re-hashed
        b_after = subtree_oid(repo.store, repo.store.get_commit(second).tree_oid, "/b")
        assert b_after == b_before

    def test_tree_puts_are_bounded_by_the_dirty_path(self):
        repo = Repository.init("perf", "alice")
        for d in range(8):
            for i in range(4):
                repo.write_file(f"/dir{d}/f{i}.txt", f"{d}.{i}\n")
        repo.commit("seed")

        puts: list[str] = []
        original_put = repo.store.put

        def counting_put(obj):
            if isinstance(obj, Tree):
                puts.append(obj.oid)
            return original_put(obj)

        repo.store.put = counting_put
        try:
            repo.write_file("/dir3/f0.txt", "changed\n")
            repo.commit("edit one file")
        finally:
            repo.store.put = original_put
        # One put for '/dir3', one for '/' — the other 7 subtrees are reused.
        assert len(puts) == 2
        assert repo.index.last_write_tree_stats["reused"] == 7

    def test_checkout_primes_the_cache(self):
        repo = Repository.init("perf", "alice")
        repo.write_file("/a/one.txt", "1\n")
        repo.write_file("/b/two.txt", "2\n")
        first = repo.commit("seed")
        repo.write_file("/a/one.txt", "1b\n")
        repo.commit("edit")
        repo.checkout(first)
        repo.write_file("/b/two.txt", "2b\n")
        repo.commit("edit after checkout")
        # read_tree primed the cache, so '/a' was reused, not rebuilt.
        assert repo.index.last_write_tree_stats["reused"] >= 1


class TestResolvePrefixIndex:
    def test_resolution_probes_are_bounded(self):
        store = ObjectStore()
        oids = [store.put(Blob(f"payload {i}\n".encode())) for i in range(512)]
        target = oids[123]
        assert store.resolve_prefix(target[:10]) == target
        # A bisect probe touches the match plus its sorted neighbour — not
        # the whole store.
        assert store.last_resolve_scan_steps <= 2

        with pytest.raises(ObjectNotFoundError):
            store.resolve_prefix("f" * 12 if not target.startswith("f" * 12) else "0" * 12)
        assert store.last_resolve_scan_steps <= 2

    def test_index_tracks_later_writes(self):
        store = ObjectStore()
        store.put(Blob(b"first"))
        first = store.put(Blob(b"first"))
        assert store.resolve_prefix(first[:10]) == first
        second = store.put(Blob(b"second"))
        assert store.resolve_prefix(second[:10]) == second
        assert store.last_resolve_scan_steps <= 2


class TestCitationParseCache:
    def test_repeated_cite_at_ref_parses_once(self, monkeypatch):
        repo = Repository.init("perf", "alice")
        repo.write_file("/src/a.py", "pass\n")
        repo.commit("seed")
        manager = CitationManager(repo)
        manager.init_citations()
        ref = manager.commit("enable citations")

        calls = {"n": 0}
        import repro.citation.manager as manager_module

        original = manager_module.load_citation_bytes

        def counting_load(data):
            calls["n"] += 1
            return original(data)

        monkeypatch.setattr(manager_module, "load_citation_bytes", counting_load)
        for _ in range(25):
            manager.cite("/src/a.py", ref)
        assert calls["n"] == 1


class TestCitationFunctionRangeIndex:
    def test_entries_under_uses_string_safe_ranges(self):
        function = CitationFunction.with_root(_citation("root"))
        function.put("/a", _citation("a"), is_directory=True)
        function.put("/ab", _citation("ab"), is_directory=False)  # sorts next to '/a'
        function.put("/a/x.txt", _citation("ax"), is_directory=False)
        function.put("/a/y/z.txt", _citation("ayz"), is_directory=False)
        under = [entry.path for entry in function.entries_under("/a")]
        assert under == ["/a", "/a/x.txt", "/a/y/z.txt"]
        under_root = [entry.path for entry in function.entries_under("/", include_prefix=False)]
        assert under_root == ["/a", "/a/x.txt", "/a/y/z.txt", "/ab"]

    def test_rename_prefix_moves_exactly_the_subtree(self):
        function = CitationFunction.with_root(_citation("root"))
        function.put("/a", _citation("a"), is_directory=True)
        function.put("/ab", _citation("ab"), is_directory=False)
        function.put("/a/x.txt", _citation("ax"), is_directory=False)
        moves = function.rename_prefix("/a", "/z")
        assert moves == {"/a": "/z", "/a/x.txt": "/z/x.txt"}
        assert function.active_domain() == ["/", "/ab", "/z", "/z/x.txt"]
