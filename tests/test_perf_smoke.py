"""Deterministic hot-path regression checks (``perf_smoke`` marker).

These tests pin the *mechanisms* behind the performance work — subtree-oid
reuse in ``write_tree``, the bisect-backed object-id prefix index, the
citation parse cache, the range-scan citation index, the indexed worktree's
blob-fingerprint cache (``add`` puts exactly the dirty blobs) and path index
(single writes never iterate the worktree), and the pack backend's bounded
handle pool — via call counts and object identity, never wall-clock timing,
so tier-1 fails deterministically when a hot path regresses to its old
complexity.

Run just these with ``pytest -m perf_smoke``.
"""

from __future__ import annotations

import pytest

from repro.citation.function import CitationFunction
from repro.citation.manager import CitationManager
from repro.citation.record import Citation
from repro.errors import ObjectNotFoundError
from repro.utils.timeutil import now_utc
from repro.vcs.object_store import ObjectStore
from repro.vcs.objects import Blob, Tree
from repro.vcs.repository import Repository
from repro.vcs.storage.pack import PackBackend
from repro.vcs.treeops import subtree_oid
from repro.vcs.worktree_state import WorktreeState

pytestmark = pytest.mark.perf_smoke


def _citation(tag: str) -> Citation:
    return Citation(
        repo_name="perf",
        owner="alice",
        committed_date=now_utc(),
        commit_id="0000000",
        url=f"https://example.org/alice/perf#{tag}",
        authors=("alice",),
    )


class TestWriteTreeReuse:
    def test_unchanged_subtrees_reuse_their_oids(self):
        repo = Repository.init("perf", "alice")
        for i in range(5):
            repo.write_file(f"/a/f{i}.txt", f"a{i}\n")
            repo.write_file(f"/b/f{i}.txt", f"b{i}\n")
        first = repo.commit("seed")
        stats = repo.index.last_write_tree_stats
        assert stats == {"built": 3, "reused": 0}  # '/', '/a', '/b'
        b_before = subtree_oid(repo.store, repo.store.get_commit(first).tree_oid, "/b")

        repo.write_file("/a/f0.txt", "changed\n")
        second = repo.commit("edit under /a")
        stats = repo.index.last_write_tree_stats
        assert stats["reused"] == 1  # '/b' emitted from the cache
        assert stats["built"] == 2  # only '/' and '/a' re-hashed
        b_after = subtree_oid(repo.store, repo.store.get_commit(second).tree_oid, "/b")
        assert b_after == b_before

    def test_tree_puts_are_bounded_by_the_dirty_path(self):
        repo = Repository.init("perf", "alice")
        for d in range(8):
            for i in range(4):
                repo.write_file(f"/dir{d}/f{i}.txt", f"{d}.{i}\n")
        repo.commit("seed")

        puts: list[str] = []
        original_put = repo.store.put

        def counting_put(obj):
            if isinstance(obj, Tree):
                puts.append(obj.oid)
            return original_put(obj)

        repo.store.put = counting_put
        try:
            repo.write_file("/dir3/f0.txt", "changed\n")
            repo.commit("edit one file")
        finally:
            repo.store.put = original_put
        # One put for '/dir3', one for '/' — the other 7 subtrees are reused.
        assert len(puts) == 2
        assert repo.index.last_write_tree_stats["reused"] == 7

    def test_checkout_primes_the_cache(self):
        repo = Repository.init("perf", "alice")
        repo.write_file("/a/one.txt", "1\n")
        repo.write_file("/b/two.txt", "2\n")
        first = repo.commit("seed")
        repo.write_file("/a/one.txt", "1b\n")
        repo.commit("edit")
        repo.checkout(first)
        repo.write_file("/b/two.txt", "2b\n")
        repo.commit("edit after checkout")
        # read_tree primed the cache, so '/a' was reused, not rebuilt.
        assert repo.index.last_write_tree_stats["reused"] >= 1


class TestResolvePrefixIndex:
    def test_resolution_probes_are_bounded(self):
        store = ObjectStore()
        oids = [store.put(Blob(f"payload {i}\n".encode())) for i in range(512)]
        target = oids[123]
        assert store.resolve_prefix(target[:10]) == target
        # A bisect probe touches the match plus its sorted neighbour — not
        # the whole store.
        assert store.last_resolve_scan_steps <= 2

        with pytest.raises(ObjectNotFoundError):
            store.resolve_prefix("f" * 12 if not target.startswith("f" * 12) else "0" * 12)
        assert store.last_resolve_scan_steps <= 2

    def test_index_tracks_later_writes(self):
        store = ObjectStore()
        store.put(Blob(b"first"))
        first = store.put(Blob(b"first"))
        assert store.resolve_prefix(first[:10]) == first
        second = store.put(Blob(b"second"))
        assert store.resolve_prefix(second[:10]) == second
        assert store.last_resolve_scan_steps <= 2


class TestCitationParseCache:
    def test_repeated_cite_at_ref_parses_once(self, monkeypatch):
        repo = Repository.init("perf", "alice")
        repo.write_file("/src/a.py", "pass\n")
        repo.commit("seed")
        manager = CitationManager(repo)
        manager.init_citations()
        ref = manager.commit("enable citations")

        calls = {"n": 0}
        import repro.citation.manager as manager_module

        original = manager_module.load_citation_bytes

        def counting_load(data):
            calls["n"] += 1
            return original(data)

        monkeypatch.setattr(manager_module, "load_citation_bytes", counting_load)
        for _ in range(25):
            manager.cite("/src/a.py", ref)
        assert calls["n"] == 1


class TestWorktreeFingerprintCache:
    """``add``/``status`` hash only dirty blobs — commits are O(changed)."""

    @staticmethod
    def _counting_put(repo, calls):
        original = repo.store.put

        def wrapper(obj):
            calls.append(obj)
            return original(obj)

        return wrapper

    def test_add_after_touching_one_file_puts_exactly_one_blob(self):
        repo = Repository.init("perf", "alice")
        for i in range(60):
            repo.write_file(f"/src/pkg{i % 6}/f{i}.txt", f"content {i}\n")
        repo.commit("seed")

        repo.write_file("/src/pkg3/f3.txt", "changed\n")
        calls: list = []
        repo.store.put = self._counting_put(repo, calls)
        try:
            staged = repo.add()
        finally:
            del repo.store.put
        assert len(staged) == 60  # the index still mirrors the whole tree
        assert len(calls) == 1  # ...but only the dirty blob was hashed+stored
        assert isinstance(calls[0], Blob)

    def test_add_on_clean_worktree_puts_nothing(self):
        repo = Repository.init("perf", "alice")
        for i in range(20):
            repo.write_file(f"/d{i % 4}/f{i}.txt", f"{i}\n")
        repo.commit("seed")
        calls: list = []
        repo.store.put = self._counting_put(repo, calls)
        try:
            repo.add()
        finally:
            del repo.store.put
        assert calls == []

    def test_status_on_clean_tree_hashes_nothing(self):
        repo = Repository.init("perf", "alice")
        for i in range(25):
            repo.write_file(f"/a/b{i % 5}/f{i}.txt", f"{i}\n")
        repo.commit("seed")
        before = repo.worktree.hash_count
        for _ in range(3):
            assert repo.status().is_clean
        assert repo.worktree.hash_count == before

        # A checkout primes every fingerprint from the tree itself.
        repo.write_file("/a/b0/f0.txt", "edited\n")
        second = repo.commit("edit")
        repo.checkout(second)
        assert repo.status().is_clean
        assert repo.worktree.hash_count == 0

    def test_touch_one_commit_stores_only_the_dirty_chain(self):
        repo = Repository.init("perf", "alice")
        for d in range(6):
            for i in range(4):
                repo.write_file(f"/dir{d}/f{i}.txt", f"{d}.{i}\n")
        repo.commit("seed")
        repo.write_file("/dir2/f1.txt", "changed\n")
        calls: list = []
        repo.store.put = self._counting_put(repo, calls)
        try:
            repo.commit("touch one")
        finally:
            del repo.store.put
        blobs = [obj for obj in calls if isinstance(obj, Blob)]
        trees = [obj for obj in calls if isinstance(obj, Tree)]
        assert len(blobs) == 1  # the edited file
        assert len(trees) == 2  # '/dir2' and '/'


class TestIndexedWorktreeWrites:
    """Single-file writes probe the sorted index, never the whole worktree."""

    def test_write_file_never_iterates_the_worktree(self, monkeypatch):
        repo = Repository.init("perf", "alice")
        for i in range(200):
            repo.write_file(f"/src/m{i % 10}/f{i}.txt", b"x")

        def exploding_iter(self):
            raise AssertionError("write_file iterated the whole worktree")

        monkeypatch.setattr(WorktreeState, "__iter__", exploding_iter)
        assert repo.write_file("/src/m3/brand_new.txt", b"y") == "/src/m3/brand_new.txt"

    def test_write_probes_are_bounded_by_depth_not_size(self):
        small = Repository.init("perf", "alice")
        for i in range(8):
            small.write_file(f"/src/m{i}/f{i}.txt", b"x")
        small.write_file("/src/m0/extra.txt", b"y")
        small_probes = small.worktree.last_check_probes

        large = Repository.init("perf", "alice")
        for i in range(400):
            large.write_file(f"/src/m{i % 10}/f{i}.txt", b"x")
        large.write_file("/src/m0/extra.txt", b"y")
        assert large.worktree.last_check_probes == small_probes  # depth-bound
        assert large.worktree.last_check_probes <= 4  # 2 ancestors + root + bisect

    def test_directory_queries_do_not_scan(self, monkeypatch):
        repo = Repository.init("perf", "alice")
        for i in range(100):
            repo.write_file(f"/lib/sub{i % 5}/f{i}.txt", b"x")

        def exploding_iter(self):
            raise AssertionError("directory query iterated the whole worktree")

        monkeypatch.setattr(WorktreeState, "__iter__", exploding_iter)
        assert repo.directory_exists("/lib/sub3")
        assert not repo.directory_exists("/lib/nope")
        assert repo.list_files("/lib/sub3") == sorted(
            f"/lib/sub3/f{i}.txt" for i in range(3, 100, 5)
        )


class TestLazyCheckout:
    """Checkout installs oid-backed entries: blobs are read on first access
    only, so clean checkout + status touch zero blobs no matter the tree size."""

    @staticmethod
    def _count_blob_reads(repo, counter):
        original_get_blob = repo.store.get_blob
        original_get_blobs = repo.store.get_blobs

        def counting_get_blob(oid):
            counter["n"] += 1
            return original_get_blob(oid)

        def counting_get_blobs(oids):
            blobs = original_get_blobs(oids)
            counter["n"] += len(blobs)
            return blobs

        repo.store.get_blob = counting_get_blob
        repo.store.get_blobs = counting_get_blobs

    def test_clean_checkout_and_status_of_5k_tree_read_zero_blobs(self):
        repo = Repository.init("lazy", "alice")
        repo.write_files(
            {f"/src/pkg{i % 40}/module_{i}.py": f"# module {i}\n" for i in range(5000)}
        )
        main = repo.commit("seed")
        repo.write_file("/src/pkg0/module_0.py", "# touched\n")
        feature = repo.commit("edit")

        from repro.vcs.remote import clone_repository

        cold = clone_repository(repo)  # fully lazy view, nothing materialised
        reads = {"n": 0}
        self._count_blob_reads(cold, reads)
        cold.checkout(main)
        cold.checkout(feature)
        for _ in range(3):
            assert cold.status().is_clean
        assert reads["n"] == 0
        assert cold.worktree.materialize_count == 0
        assert cold.worktree.lazy_count() == 5000

    def test_first_access_materializes_exactly_one_blob(self):
        repo = Repository.init("lazy", "alice")
        for i in range(40):
            repo.write_file(f"/d{i % 4}/f{i}.txt", f"{i}\n")
        tip = repo.commit("seed")
        from repro.vcs.remote import clone_repository

        cold = clone_repository(repo)
        reads = {"n": 0}
        self._count_blob_reads(cold, reads)
        assert cold.read_file("/d1/f1.txt") == b"1\n"
        assert reads["n"] == 1
        assert cold.worktree.materialize_count == 1
        # Commit after the lazy checkout reuses the primed fingerprints:
        # nothing to commit, nothing hashed, nothing read.
        from repro.errors import VCSError

        with pytest.raises(VCSError):
            cold.commit("noop")
        assert reads["n"] == 1
        assert cold.checkout(tip) == tip

    def test_full_materialisation_uses_one_batched_read(self, monkeypatch):
        import repro.vcs.storage.base as base_module

        repo = Repository.init("lazy", "alice")
        for i in range(30):
            repo.write_file(f"/src/f{i}.txt", f"payload {i}\n")
        repo.commit("seed")
        from repro.vcs.remote import clone_repository

        cold = clone_repository(repo)
        assert cold.worktree.lazy_count() == 30

        calls = {"read_many": 0}
        original_read_many = base_module.ObjectBackend.read_many

        def counting_read_many(self, oids):
            calls["read_many"] += 1
            return original_read_many(self, oids)

        monkeypatch.setattr(base_module.ObjectBackend, "read_many", counting_read_many)
        materialized = cold.worktree.materialize_all()
        assert materialized == 30
        assert calls["read_many"] == 1  # one batch, not 30 single faults
        assert dict(cold.worktree) == repo.snapshot()

    def test_adopted_worktree_staging_batches_its_faults(self, monkeypatch):
        """After cross-repo adoption every blob must be read to re-store;
        those reads go through one batched read_many, not per-path faults."""
        import repro.vcs.storage.base as base_module
        from repro.vcs.remote import clone_repository

        donor = Repository.init("donor", "alice")
        for i in range(40):
            donor.write_file(f"/src/f{i}.txt", f"payload {i}\n")
        donor.commit("seed")
        cold = clone_repository(donor)  # fully lazy view
        adopter = Repository.init("adopter", "bob")
        adopter.worktree = cold.worktree

        calls = {"read_many": 0}
        original_read_many = base_module.ObjectBackend.read_many

        def counting_read_many(self, oids):
            calls["read_many"] += 1
            return original_read_many(self, oids)

        monkeypatch.setattr(base_module.ObjectBackend, "read_many", counting_read_many)
        singles = {"n": 0}
        original_get_blob = cold.store.get_blob

        def counting_get_blob(oid):
            singles["n"] += 1
            return original_get_blob(oid)

        cold.store.get_blob = counting_get_blob
        adopter.add()
        assert calls["read_many"] == 1  # one batch served all 40 faults
        assert singles["n"] == 0  # no per-path get_blob fallbacks
        assert adopter.commit("adopted")

    def test_lazy_entries_survive_pack_backend_and_export(self, tmp_path):
        from repro.cli.storage import load_repository, save_repository
        from repro.vcs.remote import clone_repository

        repo = Repository.init("lazy", "alice")
        for i in range(25):
            repo.write_file(f"/lib/f{i}.txt", f"content {i}\n")
        repo.commit("seed")
        save_repository(clone_repository(repo), tmp_path / "wc", storage="pack")
        reopened = load_repository(tmp_path / "wc")
        assert dict(reopened.worktree) == repo.snapshot()


class TestPackHandlePoolAndMidx:
    def test_open_handles_stay_bounded(self, tmp_path):
        backend = PackBackend(tmp_path / "packs", handle_limit=3)
        oids = []
        for batch in range(6):  # 6 packs
            for i in range(5):
                payload = f"pack {batch} object {i}\n".encode()
                from repro.utils.hashing import object_id

                oid = object_id("blob", payload)
                backend.write(oid, "blob", payload)
                oids.append(oid)
            backend.flush()
        assert backend.stats()["packs"] == 6
        for oid in oids:  # touch every pack
            backend.read(oid)
        assert backend.open_file_handles() <= 3
        backend.close()
        assert backend.open_file_handles() == 0

    def test_cold_open_with_midx_reads_no_per_pack_index(self, tmp_path, monkeypatch):
        from repro.utils.hashing import object_id
        from repro.vcs.storage import pack as pack_module

        backend = PackBackend(tmp_path / "packs")
        oids = []
        for batch in range(4):
            for i in range(4):
                payload = f"batch {batch} object {i} {'p' * 64}\n".encode()
                oid = object_id("blob", payload)
                backend.write(oid, "blob", payload)
                oids.append(oid)
            backend.flush()
        backend.close()

        loads = {"n": 0}
        original = pack_module._PackFile._load_index

        def counting_load(self):
            loads["n"] += 1
            return original(self)

        monkeypatch.setattr(pack_module._PackFile, "_load_index", counting_load)
        reopened = PackBackend(tmp_path / "packs")
        assert reopened.stats()["packs"] == 4
        for oid in oids:
            assert reopened.read(oid)[1]
        assert loads["n"] == 0  # the midx answered everything
        reopened.close()


class TestCitationFunctionRangeIndex:
    def test_entries_under_uses_string_safe_ranges(self):
        function = CitationFunction.with_root(_citation("root"))
        function.put("/a", _citation("a"), is_directory=True)
        function.put("/ab", _citation("ab"), is_directory=False)  # sorts next to '/a'
        function.put("/a/x.txt", _citation("ax"), is_directory=False)
        function.put("/a/y/z.txt", _citation("ayz"), is_directory=False)
        under = [entry.path for entry in function.entries_under("/a")]
        assert under == ["/a", "/a/x.txt", "/a/y/z.txt"]
        under_root = [entry.path for entry in function.entries_under("/", include_prefix=False)]
        assert under_root == ["/a", "/a/x.txt", "/a/y/z.txt", "/ab"]

    def test_rename_prefix_moves_exactly_the_subtree(self):
        function = CitationFunction.with_root(_citation("root"))
        function.put("/a", _citation("a"), is_directory=True)
        function.put("/ab", _citation("ab"), is_directory=False)
        function.put("/a/x.txt", _citation("ax"), is_directory=False)
        moves = function.rename_prefix("/a", "/z")
        assert moves == {"/a": "/z", "/a/x.txt": "/z/x.txt"}
        assert function.active_domain() == ["/", "/ab", "/z", "/z/x.txt"]
