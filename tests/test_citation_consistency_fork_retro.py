"""Unit tests for consistency checking, ForkCite helpers and retroactive citation."""

from datetime import datetime, timezone

import pytest

from repro.citation.consistency import MISSING_ROOT, ORPHAN_PATH, WRONG_KIND, check_consistency, repair
from repro.citation.fork import fork_citation, rewrite_fork_root
from repro.citation.function import CitationFunction
from repro.citation.retro import attribute_history, build_retroactive_function, retrofit
from repro.vcs.repository import Repository


class TestConsistency:
    def test_consistent_function(self, sample_citation):
        function = CitationFunction.with_root(sample_citation)
        function.put("/src/a.py", sample_citation, False)
        function.put("/src", sample_citation, True)
        report = check_consistency(function, {"/src/a.py"}, {"/src"})
        assert report.is_consistent

    def test_missing_root_detected(self, sample_citation):
        function = CitationFunction()
        function.put("/a.py", sample_citation, False)
        report = check_consistency(function, {"/a.py"}, set())
        assert [v.kind for v in report.violations] == [MISSING_ROOT]

    def test_orphan_and_wrong_kind_detected(self, sample_citation):
        function = CitationFunction.with_root(sample_citation)
        function.put("/gone.py", sample_citation, False)
        function.put("/actually_a_dir", sample_citation, False)
        function.put("/actually_a_file.py", sample_citation, True)
        report = check_consistency(
            function, {"/actually_a_file.py"}, {"/actually_a_dir"}
        )
        kinds = {v.path: v.kind for v in report.violations}
        assert kinds["/gone.py"] == ORPHAN_PATH
        assert kinds["/actually_a_dir"] == WRONG_KIND
        assert kinds["/actually_a_file.py"] == WRONG_KIND
        assert report.paths() == sorted(kinds)
        assert len(report.by_kind(WRONG_KIND)) == 2

    def test_repair_fixes_everything_fixable(self, sample_citation):
        function = CitationFunction()
        function.put("/gone.py", sample_citation, False)
        function.put("/dir", sample_citation, False)
        repair(function, set(), {"/dir"}, root_citation=sample_citation)
        after = check_consistency(function, set(), {"/dir"})
        assert after.is_consistent
        assert function.has_root
        assert function.entry("/dir").is_directory


class TestForkCite:
    def test_fork_citation_preserves_credit_and_records_origin(self, sample_citation):
        when = datetime(2019, 5, 1, tzinfo=timezone.utc)
        forked = fork_citation(
            sample_citation,
            new_owner="Susan",
            new_repo_name="P2",
            new_url="https://github.com/Susan/P2",
            forked_at=when,
            fork_commit_id="abc1234",
        )
        assert forked.owner == "Susan" and forked.repo_name == "P2"
        assert forked.authors == sample_citation.authors  # credit preserved
        assert dict(forked.extra)["forkedFrom"] == "Yinjun Wu/Data_citation_demo@bbd248a"
        assert forked.commit_id == "abc1234"

    def test_rewrite_fork_root_keeps_other_entries(self, sample_citation, other_citation):
        function = CitationFunction.with_root(sample_citation)
        function.put("/CoreCover", other_citation, True)
        new_root = sample_citation.with_changes(owner="Susan")
        rewritten = rewrite_fork_root(function, new_root)
        assert rewritten.root_citation().owner == "Susan"
        assert rewritten.get_explicit("/CoreCover") == other_citation
        assert function.root_citation().owner == "Yinjun Wu"  # original untouched


@pytest.fixture
def multi_author_repo() -> Repository:
    repo = Repository.init("legacy", "alice", description="A legacy project")
    repo.write_file("core/engine.py", "v1\n")
    repo.write_file("README.md", "readme\n")
    repo.commit("core engine", author_name="Alice")
    repo.write_file("gui/window.py", "w1\n")
    repo.commit("gui", author_name="Bob")
    repo.write_file("core/engine.py", "v2\n")
    repo.commit("engine improvements", author_name="Carol")
    repo.write_file("gui/dialog.py", "d1\n")
    repo.commit("more gui", author_name="Bob")
    return repo


class TestRetroactiveCitation:
    def test_attribution_tracks_authors_per_file(self, multi_author_repo):
        index = attribute_history(multi_author_repo)
        assert index.commits_scanned == 4
        assert index.files["/core/engine.py"].authors == ["Alice", "Carol"]
        assert index.files["/gui/window.py"].authors == ["Bob"]
        assert set(index.all_authors()) == {"Alice", "Bob", "Carol"}

    def test_attribution_follows_renames(self, multi_author_repo):
        multi_author_repo.move_file("/core/engine.py", "/core/machine.py")
        multi_author_repo.commit("rename engine", author_name="Dave")
        index = attribute_history(multi_author_repo)
        assert "/core/engine.py" not in index.files
        assert index.files["/core/machine.py"].authors == ["Alice", "Carol"]

    def test_deleted_files_not_attributed(self, multi_author_repo):
        multi_author_repo.remove_file("/gui/dialog.py")
        multi_author_repo.commit("drop dialog", author_name="Alice")
        index = attribute_history(multi_author_repo)
        assert "/gui/dialog.py" not in index.files

    def test_root_granularity(self, multi_author_repo):
        report = build_retroactive_function(multi_author_repo, granularity="root")
        assert report.entries_created == 1
        assert set(report.function.root_citation().authors) == {"Alice", "Bob", "Carol"}

    def test_directory_granularity_cites_divergent_directories(self, multi_author_repo):
        report = build_retroactive_function(multi_author_repo, granularity="directory")
        domain = report.function.active_domain()
        assert "/gui" in domain  # only Bob worked there, differs from the root's set
        assert report.function.resolve("/gui/window.py").citation.authors == ("Bob",)

    def test_file_granularity_is_finest(self, multi_author_repo):
        directory = build_retroactive_function(multi_author_repo, granularity="directory")
        file_level = build_retroactive_function(multi_author_repo, granularity="file")
        assert file_level.entries_created >= directory.entries_created
        assert file_level.function.resolve("/core/engine.py").citation.authors == ("Alice", "Carol")

    def test_retrofit_commits_citation_file(self, multi_author_repo):
        report = retrofit(multi_author_repo, granularity="directory")
        assert multi_author_repo.file_exists("/citation.cite")
        assert multi_author_repo.log()[0].summary == "Add retroactive citations"
        assert report.contributors  # mined from history

    def test_retro_report_counts(self, multi_author_repo):
        report = build_retroactive_function(multi_author_repo, granularity="file")
        assert report.commits_scanned == 4
        assert report.granularity == "file"
        assert len(report.contributors) == 3
