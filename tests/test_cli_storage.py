"""Unit tests for the CLI's on-disk persistence layer (repro.cli.storage)."""

import json

import pytest

from repro.errors import CLIError
from repro.citation.manager import CitationManager
from repro.cli.storage import STATE_DIR, STATE_FILE, is_working_copy, load_repository, save_repository


@pytest.fixture
def saved(enabled_manager, tmp_path):
    """The enabled demo repository saved to disk as a working copy."""
    directory = tmp_path / "copy"
    save_repository(enabled_manager.repo, directory)
    return enabled_manager.repo, directory


class TestSaveAndLoad:
    def test_save_creates_state_and_exports_files(self, saved):
        repo, directory = saved
        assert is_working_copy(directory)
        assert (directory / "src" / "main.py").read_text() == "print('hello')\n"
        assert (directory / "citation.cite").exists()
        state = json.loads((directory / STATE_DIR / STATE_FILE).read_text())
        assert state["name"] == "demo" and state["owner"] == "alice"
        assert state["branches"]["main"] == repo.head_oid()

    def test_load_round_trips_history_refs_and_worktree(self, saved):
        repo, directory = saved
        loaded = load_repository(directory)
        assert loaded.full_name == repo.full_name
        assert loaded.head_oid() == repo.head_oid()
        assert loaded.branches() == repo.branches()
        assert loaded.worktree == repo.worktree
        assert [c.summary for c in loaded.log()] == [c.summary for c in repo.log()]

    def test_loaded_repository_reflects_on_disk_edits(self, saved):
        _, directory = saved
        (directory / "src" / "main.py").write_text("print('edited on disk')\n")
        (directory / "new_module.py").write_text("x = 1\n")
        loaded = load_repository(directory)
        status = loaded.status()
        assert "/src/main.py" in status.modified
        assert "/new_module.py" in status.untracked
        oid = loaded.commit("pick up disk edits")
        assert loaded.read_file_at(oid, "/new_module.py") == b"x = 1\n"

    def test_citation_manager_works_over_a_loaded_copy(self, saved):
        _, directory = saved
        loaded = load_repository(directory)
        manager = CitationManager(loaded)
        resolved = manager.cite("/docs/guide.md")
        assert resolved.citation.owner == "alice"
        assert manager.validate().is_consistent

    def test_save_load_save_is_stable(self, saved, tmp_path):
        _, directory = saved
        first = load_repository(directory)
        second_dir = tmp_path / "again"
        save_repository(first, second_dir)
        second = load_repository(second_dir)
        assert second.head_oid() == first.head_oid()
        assert second.worktree == first.worktree

    def test_detached_head_round_trip(self, simple_repo, tmp_path):
        first = simple_repo.head_oid()
        simple_repo.write_file("x.txt", "x")
        simple_repo.commit("second")
        simple_repo.checkout(first)
        directory = tmp_path / "detached"
        save_repository(simple_repo, directory)
        loaded = load_repository(directory)
        assert loaded.refs.is_detached
        assert loaded.head_oid() == first

    def test_tags_round_trip(self, simple_repo, tmp_path):
        simple_repo.tag("v1.0")
        directory = tmp_path / "tagged"
        save_repository(simple_repo, directory)
        assert load_repository(directory).refs.tags == {"v1.0": simple_repo.head_oid()}


class TestErrorPaths:
    def test_load_from_plain_directory_fails(self, tmp_path):
        with pytest.raises(CLIError):
            load_repository(tmp_path)

    def test_corrupt_state_file_reported(self, saved):
        _, directory = saved
        (directory / STATE_DIR / STATE_FILE).write_text("{not json")
        with pytest.raises(CLIError):
            load_repository(directory)

    def test_tampered_object_fails_integrity_check(self, saved):
        _, directory = saved
        state_path = directory / STATE_DIR / STATE_FILE
        state = json.loads(state_path.read_text())
        first_oid = next(iter(state["objects"]))
        # Re-key an object under a wrong id: loading must detect the mismatch.
        state["objects"]["0" * 40] = state["objects"].pop(first_oid)
        state_path.write_text(json.dumps(state))
        with pytest.raises(CLIError):
            load_repository(directory)

    def test_state_dir_is_never_imported_into_the_worktree(self, saved):
        _, directory = saved
        loaded = load_repository(directory)
        assert not any(path.startswith("/" + STATE_DIR) for path in loaded.worktree)
