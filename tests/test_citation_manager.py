"""Integration-style unit tests for CitationManager (the local tool as a library)."""

import pytest

from repro.errors import CitationConflictError, CitationFileError, MergeConflictError, VCSError
from repro.citation.citefile import CITATION_FILE_PATH, load_citation_bytes
from repro.citation.conflict import AskUserStrategy, NewestStrategy, TheirsStrategy
from repro.citation.manager import CitationManager
from repro.vcs.repository import Repository


class TestEnableAndCite:
    def test_init_citations_creates_root_entry(self, enabled_manager):
        function = enabled_manager.citation_function()
        assert function.active_domain() == ["/"]
        root = function.root_citation()
        assert root.repo_name == "demo" and root.owner == "alice"
        assert enabled_manager.repo.file_exists(CITATION_FILE_PATH)

    def test_double_enable_requires_overwrite(self, enabled_manager):
        with pytest.raises(CitationFileError):
            enabled_manager.init_citations()
        enabled_manager.init_citations(overwrite=True)

    def test_not_enabled_raises(self, simple_repo):
        manager = CitationManager(simple_repo)
        with pytest.raises(CitationFileError):
            manager.citation_function()

    def test_cite_resolves_from_worktree_and_versions(self, enabled_manager, sample_citation):
        manager = enabled_manager
        enabled_commit = manager.repo.head_oid()
        manager.add_cite("/src/main.py", sample_citation)
        manager.commit("AddCite main")
        assert manager.cite("/src/main.py").citation == sample_citation
        # The previously committed version still resolves to the root citation.
        assert manager.cite("/src/main.py", ref=enabled_commit).citation.owner == "alice"

    def test_cite_chain(self, enabled_manager, sample_citation):
        enabled_manager.add_cite("/src", sample_citation)
        chain = enabled_manager.cite_chain("/src/main.py")
        assert [r.source_path for r in chain] == ["/src", "/"]

    def test_gen_cite_and_log_summary(self, enabled_manager, sample_citation):
        enabled_manager.add_cite("/docs/guide.md", sample_citation)
        resolved = enabled_manager.gen_cite("/docs/guide.md")
        assert resolved.is_explicit
        summary = enabled_manager.log.summary()
        assert "AddCite(/docs/guide.md)" in summary
        oid = enabled_manager.commit()  # default message comes from the log
        assert "AddCite(/docs/guide.md)" in enabled_manager.repo.store.get_commit(oid).message

    def test_del_and_modify(self, enabled_manager, sample_citation, other_citation):
        enabled_manager.add_cite("/README.md", sample_citation)
        enabled_manager.modify_cite("/README.md", other_citation)
        assert enabled_manager.cite("/README.md").citation == other_citation
        enabled_manager.del_cite("/README.md")
        assert not enabled_manager.cite("/README.md").is_explicit

    def test_refresh_root_citation_points_at_head(self, enabled_manager):
        manager = enabled_manager
        manager.repo.write_file("/CHANGELOG.md", "v1\n")
        release = manager.commit("release v1")
        updated = manager.refresh_root_citation()
        assert updated.commit_id == release[:7]
        assert manager.citation_function().root_citation().commit_id == release[:7]

    def test_default_root_citation_fields(self, enabled_manager):
        citation = enabled_manager.default_root_citation(authors=["X", "Y"], doi="10.1/z")
        assert citation.url == "https://github.com/alice/demo"
        assert citation.authors == ("X", "Y")
        assert citation.doi == "10.1/z"

    def test_citation_file_is_committed_as_side_effect(self, enabled_manager, sample_citation):
        enabled_manager.add_cite("/src/main.py", sample_citation)
        oid = enabled_manager.commit("AddCite")
        stored = enabled_manager.repo.read_file_at(oid, CITATION_FILE_PATH)
        assert load_citation_bytes(stored).get_explicit("/src/main.py") == sample_citation


class TestFileOperations:
    def test_move_file_carries_citation(self, enabled_manager, sample_citation):
        enabled_manager.add_cite("/src/main.py", sample_citation)
        enabled_manager.move_file("/src/main.py", "/src/entry.py")
        assert enabled_manager.cite("/src/entry.py").is_explicit
        assert enabled_manager.validate().is_consistent

    def test_move_directory_reroots_citations(self, enabled_manager, sample_citation):
        enabled_manager.add_cite("/src", sample_citation)
        enabled_manager.add_cite("/src/util/helpers.py", sample_citation)
        enabled_manager.move_directory("/src", "/lib")
        assert enabled_manager.cite("/lib").is_explicit
        assert enabled_manager.cite("/lib/util/helpers.py").is_explicit
        assert enabled_manager.validate().is_consistent

    def test_remove_file_drops_citation(self, enabled_manager, sample_citation):
        enabled_manager.add_cite("/docs/guide.md", sample_citation)
        enabled_manager.remove_file("/docs/guide.md")
        assert "/docs/guide.md" not in enabled_manager.citation_function()
        assert enabled_manager.validate().is_consistent

    def test_remove_directory_drops_subtree_citations(self, enabled_manager, sample_citation):
        enabled_manager.add_cite("/src", sample_citation)
        enabled_manager.add_cite("/src/main.py", sample_citation)
        enabled_manager.remove_directory("/src")
        assert enabled_manager.citation_function().active_domain() == ["/"]

    def test_validate_detects_manual_damage(self, enabled_manager, sample_citation):
        # Bypass the manager (simulating manual edits) to create an orphan entry.
        enabled_manager.citation_function().put("/ghost.py", sample_citation, False)
        report = enabled_manager.validate()
        assert not report.is_consistent
        enabled_manager.repair()
        assert enabled_manager.validate().is_consistent


class TestCopyCite:
    @pytest.fixture
    def source(self, other_citation):
        repo = Repository.init("corecover", "chenli")
        repo.write_file("CoreCover/rewrite.py", "rewrite\n")
        repo.write_file("CoreCover/tests/test_rewrite.py", "test\n")
        repo.commit("initial")
        manager = CitationManager(repo)
        manager.init_citations(other_citation)
        manager.commit("enable")
        return repo

    def test_copy_brings_files_and_citations(self, enabled_manager, source, other_citation):
        outcome = enabled_manager.copy_cite(source, "/CoreCover", "/vendor/CoreCover")
        assert "/vendor/CoreCover/rewrite.py" in outcome.copied_files
        assert enabled_manager.repo.file_exists("/vendor/CoreCover/tests/test_rewrite.py")
        assert enabled_manager.cite("/vendor/CoreCover/rewrite.py").citation == other_citation
        assert outcome.citation_result.root_citation_added
        enabled_manager.commit("CopyCite CoreCover")
        assert enabled_manager.validate().is_consistent

    def test_copy_from_missing_directory_fails(self, enabled_manager, source):
        with pytest.raises(VCSError):
            enabled_manager.copy_cite(source, "/Nope", "/vendor/Nope")

    def test_copy_from_uncited_source_copies_files_only(self, enabled_manager):
        plain = Repository.init("plain", "nobody")
        plain.write_file("pkg/mod.py", "x\n")
        plain.commit("c")
        outcome = enabled_manager.copy_cite(plain, "/pkg", "/third_party/pkg")
        assert outcome.copied_files == ("/third_party/pkg/mod.py",)
        assert outcome.citation_result.migrated_count == 0


class TestMergeCiteAndForkCite:
    def _setup_branches(self, manager: CitationManager, sample_citation, other_citation,
                        conflicting: bool = False):
        repo = manager.repo
        repo.create_branch("topic")
        repo.checkout("topic")
        manager.reload()
        repo.write_file("/topic.py", "topic\n")
        manager.add_cite("/topic.py", other_citation)
        if conflicting:
            manager.modify_cite("/", other_citation)
        manager.commit("topic work", author_name="bob")
        repo.checkout("main")
        manager.reload()
        repo.write_file("/mainline.py", "main\n")
        manager.add_cite("/mainline.py", sample_citation)
        manager.commit("main work", author_name="alice")

    def test_merge_unions_citations(self, enabled_manager, sample_citation, other_citation):
        self._setup_branches(enabled_manager, sample_citation, other_citation)
        outcome = enabled_manager.merge_cite("topic")
        function = enabled_manager.citation_function()
        assert function.get_explicit("/topic.py") == other_citation
        assert function.get_explicit("/mainline.py") == sample_citation
        commit = enabled_manager.repo.store.get_commit(outcome.commit_oid)
        assert len(commit.parent_oids) == 2
        assert enabled_manager.validate().is_consistent

    def test_merge_conflict_requires_strategy(self, enabled_manager, sample_citation, other_citation):
        self._setup_branches(enabled_manager, sample_citation, other_citation, conflicting=True)
        with pytest.raises(CitationConflictError):
            enabled_manager.merge_cite("topic", strategy=AskUserStrategy())

    def test_merge_conflict_resolved_by_strategy(self, enabled_manager, sample_citation, other_citation):
        self._setup_branches(enabled_manager, sample_citation, other_citation, conflicting=True)
        outcome = enabled_manager.merge_cite("topic", strategy=TheirsStrategy())
        assert outcome.citation_result.auto_resolved_count == 1
        assert enabled_manager.citation_function().root_citation() == other_citation

    def test_merge_drops_entries_for_files_deleted_by_git_merge(
        self, enabled_manager, sample_citation, other_citation
    ):
        manager = enabled_manager
        repo = manager.repo
        manager.add_cite("/docs/guide.md", other_citation)
        manager.commit("cite the guide")
        repo.create_branch("cleanup")
        repo.checkout("cleanup")
        manager.reload()
        manager.remove_file("/docs/guide.md")
        manager.commit("drop the guide")
        repo.checkout("main")
        manager.reload()
        repo.write_file("/untouched.py", "u\n")
        manager.commit("main keeps going")
        outcome = manager.merge_cite("cleanup", strategy=NewestStrategy())
        assert "/docs/guide.md" in outcome.citation_result.dropped_paths
        assert "/docs/guide.md" not in manager.citation_function()
        assert manager.validate().is_consistent

    def test_merge_file_conflicts_must_be_resolved(self, enabled_manager, sample_citation, other_citation):
        manager = enabled_manager
        repo = manager.repo
        repo.create_branch("edit")
        repo.checkout("edit")
        manager.reload()
        repo.write_file("/README.md", "# edited on branch\n")
        manager.commit("branch edit")
        repo.checkout("main")
        manager.reload()
        repo.write_file("/README.md", "# edited on main\n")
        manager.commit("main edit")
        with pytest.raises(MergeConflictError) as excinfo:
            manager.merge_cite("edit")
        assert excinfo.value.conflicts == ["/README.md"]
        outcome = manager.merge_cite("edit", file_resolutions={"/README.md": b"# resolved\n"})
        assert manager.repo.read_file("/README.md") == b"# resolved\n"
        assert outcome.commit_oid == manager.repo.head_oid()

    def test_merge_already_merged_branch_is_noop(self, enabled_manager, sample_citation, other_citation):
        self._setup_branches(enabled_manager, sample_citation, other_citation)
        enabled_manager.merge_cite("topic")
        head = enabled_manager.repo.head_oid()
        outcome = enabled_manager.merge_cite("topic")
        assert outcome.commit_oid == head

    def test_fork_cite_preserves_credit_and_adds_provenance(
        self, enabled_manager, sample_citation, other_citation
    ):
        enabled_manager.add_cite("/src/main.py", other_citation)
        enabled_manager.commit("cite main")
        fork_manager = enabled_manager.fork_cite("carol", new_name="demo-fork")
        assert fork_manager.repo.owner == "carol"
        root = fork_manager.citation_function().root_citation()
        assert root.owner == "carol"
        assert dict(root.extra)["forkedFrom"].startswith("alice/demo@")
        # Imported content keeps crediting the original authors.
        assert fork_manager.cite("/src/main.py").citation == other_citation
        # The original repository is untouched.
        assert enabled_manager.citation_function().root_citation().owner == "alice"
