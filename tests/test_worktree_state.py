"""The indexed worktree is behaviour-identical to a plain-dict model.

PR 3 replaced ``Repository``'s raw worktree dict with the indexed
:class:`~repro.vcs.worktree_state.WorktreeState` and rewrote every
working-tree operation against its sorted-path/directory/fingerprint
indexes.  These tests pin that the rewrite changed *complexity only*:

* a hypothesis property drives random operation sequences (write, batch
  write, remove, move, list, add, commit, status) against a real
  :class:`Repository` and an independent plain-dict reference model that
  re-implements the documented semantics with naive O(n) scans and fresh
  hashing — results, raised error types, staging/commit outputs and the
  final state must agree operation for operation;
* deterministic unit tests cover the mapping contract of ``WorktreeState``
  and the atomicity fixes (``move_directory`` validating the full
  destination set before mutating; a directory moved into itself).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import VCSError
from repro.utils.hashing import object_id
from repro.utils.paths import ROOT, ancestors, is_ancestor, join_path, normalize_path, relative_to
from repro.vcs.objects import MODE_FILE
from repro.vcs.repository import Repository
from repro.vcs.treeops import build_tree
from repro.vcs.worktree_state import WorktreeState


# ---------------------------------------------------------------------------
# The plain-dict reference model (naive scans, fresh hashes, no indexes)
# ---------------------------------------------------------------------------


class PlainDictModel:
    """Reference semantics for the working tree, staging and committing.

    Deliberately uses a raw dict plus full scans everywhere, and re-hashes
    every blob on demand — the behaviour the indexed implementation must
    reproduce exactly (minus the complexity).
    """

    def __init__(self) -> None:
        self.files: dict[str, bytes] = {}
        self.index: dict[str, str] = {}
        self.head_entries: dict[str, str] | None = None

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _payload(data: bytes | str) -> bytes:
        return data.encode("utf-8") if isinstance(data, str) else bytes(data)

    def _check_write(self, canonical: str) -> None:
        for existing in self.files:
            if is_ancestor(canonical, existing):
                raise VCSError("directory conflict")
            if is_ancestor(existing, canonical):
                raise VCSError("file conflict")

    # -- working-tree operations ------------------------------------------

    def write_file(self, path: str, data: bytes | str) -> str:
        canonical = normalize_path(path)
        if canonical == ROOT:
            raise VCSError("root write")
        self._check_write(canonical)
        self.files[canonical] = self._payload(data)
        return canonical

    def write_files(self, files: dict[str, bytes | str]) -> list[str]:
        incoming: dict[str, bytes] = {}
        for path, data in files.items():
            canonical = normalize_path(path)
            if canonical == ROOT:
                raise VCSError("root write")
            incoming[canonical] = self._payload(data)
        union = set(self.files) | set(incoming)
        for canonical in incoming:
            for ancestor in ancestors(canonical):
                if ancestor != ROOT and ancestor in union:
                    raise VCSError("file conflict")
            if any(is_ancestor(canonical, other) for other in union):
                raise VCSError("directory conflict")
        self.files.update(incoming)
        return sorted(incoming)

    def remove_file(self, path: str) -> None:
        canonical = normalize_path(path)
        if canonical not in self.files:
            raise VCSError("no such file")
        del self.files[canonical]
        self.index.pop(canonical, None)

    def remove_directory(self, path: str) -> list[str]:
        canonical = normalize_path(path)
        victims = [p for p in self.files if is_ancestor(canonical, p) or p == canonical]
        if not victims:
            raise VCSError("no such directory")
        for victim in victims:
            del self.files[victim]
            self.index.pop(victim, None)
        return sorted(victims)

    def move_file(self, source: str, destination: str) -> None:
        src = normalize_path(source)
        if src not in self.files:
            raise VCSError("no such file")
        dst = normalize_path(destination)
        if dst == ROOT:
            raise VCSError("root write")
        if dst != src:
            for ancestor in ancestors(dst):
                if ancestor != ROOT and ancestor != src and ancestor in self.files:
                    raise VCSError("file conflict")
            if any(
                is_ancestor(dst, p) and not is_ancestor(src, p, strict=False)
                for p in self.files
            ):
                raise VCSError("directory conflict")
            self.files[dst] = self.files.pop(src)
        self.index.pop(src, None)

    def move_directory(self, source: str, destination: str) -> dict[str, str]:
        src = normalize_path(source)
        dst = normalize_path(destination)
        victims = sorted(p for p in self.files if is_ancestor(src, p))
        if not victims:
            raise VCSError("no such directory")
        moves = {old: join_path(dst, relative_to(old, src)) for old in victims}
        if dst == src:
            for old in victims:
                self.index.pop(old, None)
            return moves
        destination_set = set(moves.values())
        for new_path in moves.values():
            for ancestor in ancestors(new_path):
                if ancestor == ROOT or ancestor in destination_set:
                    continue
                if ancestor in self.files and not is_ancestor(src, ancestor):
                    raise VCSError("file conflict")
            if any(
                is_ancestor(new_path, p)
                and not is_ancestor(src, p, strict=False)
                and p not in destination_set
                for p in self.files
            ):
                raise VCSError("directory conflict")
        contents = {old: self.files[old] for old in victims}
        for old in victims:
            del self.files[old]
            self.index.pop(old, None)
        for old, new_path in moves.items():
            self.files[new_path] = contents[old]
        return moves

    # -- queries -----------------------------------------------------------

    def list_files(self, under: str = ROOT) -> list[str]:
        base = normalize_path(under)
        if base == ROOT:
            return sorted(self.files)
        return sorted(p for p in self.files if p == base or is_ancestor(base, p))

    def list_directories(self, under: str = ROOT) -> list[str]:
        base = normalize_path(under)
        directories: set[str] = {ROOT}
        for path in self.files:
            parts = path[1:].split("/")
            for cut in range(1, len(parts)):
                directories.add("/" + "/".join(parts[:cut]))
        if base == ROOT:
            return sorted(directories)
        return sorted(d for d in directories if d == base or is_ancestor(base, d))

    def directory_exists(self, path: str) -> bool:
        canonical = normalize_path(path)
        if canonical == ROOT:
            return True
        return any(is_ancestor(canonical, existing) for existing in self.files)

    # -- staging and committing -------------------------------------------

    @staticmethod
    def _blob_oid(data: bytes) -> str:
        return object_id("blob", data)

    def add(self, paths: list[str] | None = None) -> list[str]:
        if paths is None:
            targets = sorted(self.files)
            self.index = {p: self._blob_oid(self.files[p]) for p in targets}
            return targets
        targets: list[str] = []
        seen: set[str] = set()
        for path in paths:
            canonical = normalize_path(path)
            if canonical in self.files:
                if canonical not in seen:
                    seen.add(canonical)
                    targets.append(canonical)
            elif self.directory_exists(canonical):
                for p in sorted(self.files):
                    if is_ancestor(canonical, p) and p not in seen:
                        seen.add(p)
                        targets.append(p)
                # Staging a directory records deletions beneath it too.
                for p in list(self.index):
                    if (p == canonical or is_ancestor(canonical, p)) and p not in self.files:
                        del self.index[p]
            else:
                self.index.pop(canonical, None)
                for p in list(self.index):
                    if is_ancestor(canonical, p):
                        del self.index[p]
        for path in targets:
            self.index[path] = self._blob_oid(self.files[path])
        return targets

    def raw_delete(self, path: str) -> None:
        """Delete straight from the files mapping (no index bookkeeping) —
        mirrors ``del repo.worktree[path]``, which bypasses ``remove_file``."""
        canonical = normalize_path(path)
        if canonical not in self.files:
            raise VCSError("no such file")
        del self.files[canonical]

    def commit_entries(self) -> dict[str, str]:
        """The entries a ``commit()`` (auto_add) would snapshot; raises the
        nothing-to-commit error exactly when the repository does."""
        self.add()
        if self.head_entries is not None and self.index == self.head_entries:
            raise VCSError("nothing to commit")
        self.head_entries = dict(self.index)
        return dict(self.index)

    def status(self) -> dict[str, tuple[str, ...]]:
        head = self.head_entries or {}
        staged = [p for p, oid in self.index.items() if head.get(p) != oid]
        tracked = set(head) | set(self.index)
        modified, untracked = [], []
        for path, data in self.files.items():
            if path not in tracked:
                untracked.append(path)
                continue
            reference = self.index.get(path) or head.get(path)
            if reference is None:
                untracked.append(path)
            elif self._blob_oid(data) != reference:
                modified.append(path)
        deleted = [p for p in tracked if p not in self.files]
        return {
            "staged": tuple(sorted(staged)),
            "modified": tuple(sorted(modified)),
            "deleted": tuple(sorted(deleted)),
            "untracked": tuple(sorted(untracked)),
        }


# ---------------------------------------------------------------------------
# Operation strategies
# ---------------------------------------------------------------------------

_COMPONENTS = st.sampled_from(["a", "b", "ab", "c1"])
_PATHS = st.lists(_COMPONENTS, min_size=1, max_size=3).map(lambda parts: "/" + "/".join(parts))
_DATA = st.binary(max_size=6)

_OPERATIONS = st.one_of(
    st.tuples(st.just("write"), _PATHS, _DATA),
    st.tuples(
        st.just("write_files"),
        st.dictionaries(_PATHS, _DATA, max_size=4),
    ),
    st.tuples(st.just("remove_file"), _PATHS),
    st.tuples(st.just("remove_directory"), _PATHS),
    st.tuples(st.just("raw_delete"), _PATHS),
    st.tuples(st.just("move_file"), _PATHS, _PATHS),
    st.tuples(st.just("move_directory"), _PATHS, _PATHS),
    st.tuples(st.just("add_all")),
    st.tuples(st.just("add_paths"), st.lists(_PATHS, max_size=2)),
    st.tuples(st.just("commit")),
    st.tuples(st.just("status")),
    st.tuples(st.just("list"), _PATHS),
)


def _apply(target, operation):
    """Run one operation; returns ``("ok", result)`` or ``("err", type)``."""
    try:
        kind = operation[0]
        if kind == "write":
            return "ok", target.write_file(operation[1], operation[2])
        if kind == "write_files":
            return "ok", target.write_files(operation[1])
        if kind == "remove_file":
            return "ok", target.remove_file(operation[1])
        if kind == "remove_directory":
            return "ok", target.remove_directory(operation[1])
        if kind == "raw_delete":
            # Deleting straight off the worktree mapping leaves the staging
            # index untouched — the case add(["dir"]) must clean up after.
            if isinstance(target, PlainDictModel):
                return "ok", target.raw_delete(operation[1])
            canonical = normalize_path(operation[1])
            if canonical not in target.worktree:
                return "err", VCSError
            del target.worktree[canonical]
            return "ok", None
        if kind == "move_file":
            return "ok", target.move_file(operation[1], operation[2])
        if kind == "move_directory":
            return "ok", target.move_directory(operation[1], operation[2])
        if kind == "add_all":
            return "ok", target.add()
        if kind == "add_paths":
            return "ok", target.add(operation[1])
        if kind == "list":
            return "ok", (target.list_files(operation[1]), target.list_directories(operation[1]))
        raise AssertionError(f"unhandled operation {kind!r}")
    except VCSError:
        return "err", VCSError


class TestIndexedWorktreeMatchesPlainDictModel:
    @settings(max_examples=120, deadline=None)
    @given(operations=st.lists(_OPERATIONS, max_size=35))
    def test_random_operation_sequences(self, operations):
        repo = Repository.init("prop", "alice")
        model = PlainDictModel()
        for operation in operations:
            kind = operation[0]
            if kind == "commit":
                expected_error = None
                try:
                    entries = model.commit_entries()
                except VCSError:
                    expected_error = VCSError
                if expected_error:
                    with pytest.raises(VCSError):
                        repo.commit("step")
                else:
                    commit_oid = repo.commit("step")
                    actual_tree = repo.store.get_commit(commit_oid).tree_oid
                    expected_tree = build_tree(
                        repo.store, {p: (oid, MODE_FILE) for p, oid in entries.items()}
                    )
                    assert actual_tree == expected_tree
                continue
            if kind == "status":
                actual = repo.status()
                expected = model.status()
                assert actual.staged == expected["staged"]
                assert actual.modified == expected["modified"]
                assert actual.deleted == expected["deleted"]
                assert actual.untracked == expected["untracked"]
                continue
            actual = _apply(repo, operation)
            expected = _apply(model, operation)
            assert actual == expected, f"diverged on {operation!r}"
            # The mapping itself must agree after every mutation.
            assert dict(repo.worktree) == model.files

        # Final state: content, file/directory views, staging, status.
        assert dict(repo.worktree) == model.files
        assert repo.list_files() == model.list_files()
        assert repo.list_directories() == model.list_directories()
        assert {p: e[0] for p, e in repo.index.entries().items()} == model.index
        actual = repo.status()
        expected = model.status()
        assert (actual.staged, actual.modified, actual.deleted, actual.untracked) == (
            expected["staged"],
            expected["modified"],
            expected["deleted"],
            expected["untracked"],
        )


# ---------------------------------------------------------------------------
# Deterministic regressions
# ---------------------------------------------------------------------------


class TestMoveDirectoryAtomicity:
    def test_conflicting_move_leaves_worktree_untouched(self):
        repo = Repository.init("atomic", "alice")
        repo.write_file("/src/a.txt", b"a")
        repo.write_file("/src/sub/b.txt", b"b")
        # '/dst/sub' exists as a *file*: the second destination
        # '/dst/sub/b.txt' is invalid, so nothing at all may move.
        repo.write_file("/dst/sub", b"blocking file")
        before = dict(repo.worktree)
        with pytest.raises(VCSError):
            repo.move_directory("/src", "/dst")
        assert dict(repo.worktree) == before
        assert repo.list_files("/src") == ["/src/a.txt", "/src/sub/b.txt"]

    def test_conflicting_move_file_leaves_worktree_untouched(self):
        repo = Repository.init("atomic", "alice")
        repo.write_file("/a.txt", b"a")
        repo.write_file("/dir/inner.txt", b"i")
        before = dict(repo.worktree)
        with pytest.raises(VCSError):
            repo.move_file("/a.txt", "/dir")  # '/dir' has a descendant file
        assert dict(repo.worktree) == before

    def test_directory_moved_into_itself_keeps_every_payload(self):
        repo = Repository.init("atomic", "alice")
        repo.write_file("/a/f", b"outer")
        repo.write_file("/a/x/f", b"inner")
        moves = repo.move_directory("/a", "/a/x")
        assert moves == {"/a/f": "/a/x/f", "/a/x/f": "/a/x/x/f"}
        assert repo.read_file("/a/x/f") == b"outer"
        assert repo.read_file("/a/x/x/f") == b"inner"

    def test_move_then_commit_reuses_fingerprints(self):
        repo = Repository.init("atomic", "alice")
        for i in range(10):
            repo.write_file(f"/old/f{i}.txt", f"{i}\n")
        repo.commit("seed")
        repo.move_directory("/old", "/new")
        calls: list = []
        original = repo.store.put

        def counting_put(obj):
            calls.append(obj)
            return original(obj)

        repo.store.put = counting_put
        try:
            repo.commit("moved")
        finally:
            del repo.store.put
        from repro.vcs.objects import Blob

        # The bytes did not change: the move carried every blob fingerprint,
        # so the commit hashed no blobs at all.
        assert not any(isinstance(obj, Blob) for obj in calls)


class TestCrossRepositoryAdoption:
    def test_adopted_worktree_forgets_stored_flags(self):
        """Stored flags assert membership in the *previous* owner's store;
        carrying them across repositories would commit dangling blob oids."""
        origin = Repository.init("origin", "alice")
        origin.write_file("/f.txt", b"payload")
        origin.commit("seed")

        other = Repository.init("other", "bob")
        other.worktree = origin.worktree  # adopt the indexed state wholesale
        other.add()
        commit_oid = other.commit("adopted")
        tree_oid = other.store.get_commit(commit_oid).tree_oid
        # Every referenced blob must actually live in the adopting store.
        from repro.vcs.treeops import flatten_files

        for path, (oid, _) in flatten_files(other.store, tree_oid).items():
            assert other.store.get_blob(oid).data == other.worktree[path]


# ---------------------------------------------------------------------------
# Lazy checkout: the oid-backed view is behaviour-identical to an eager one
# ---------------------------------------------------------------------------

_LAZY_OPERATIONS = st.one_of(
    st.tuples(st.just("write"), _PATHS, _DATA),
    st.tuples(st.just("remove_file"), _PATHS),
    st.tuples(st.just("move_file"), _PATHS, _PATHS),
    st.tuples(st.just("move_directory"), _PATHS, _PATHS),
    st.tuples(st.just("read"), _PATHS),
    st.tuples(st.just("commit")),
    st.tuples(st.just("checkout"), st.integers(min_value=0, max_value=7)),
    st.tuples(st.just("status")),
    st.tuples(st.just("migrate")),
    st.tuples(st.just("adopt")),
)


class TestLazyCheckoutBehaviourIdentity:
    """Random access/mutate/move/checkout/adopt/migrate sequences agree with
    the plain-dict model — the lazy view changes blob-read *timing* only."""

    @settings(max_examples=60, deadline=None)
    @given(operations=st.lists(_LAZY_OPERATIONS, max_size=25))
    def test_lazy_view_matches_model_across_checkouts(self, operations):
        from repro.vcs.storage.memory import MemoryBackend
        from repro.vcs.treeops import flatten_files

        repo = Repository.init("lazy", "alice")
        model = PlainDictModel()
        # Seed history: two commits the sequence can check out lazily.
        for target in (repo, model):
            target.write_file("/a/keep.txt", b"keep")
            target.write_file("/a/edit.txt", b"v1")
        snapshots = [dict(model.files)]
        commit_oids = [repo.commit("seed 1")]
        model.commit_entries()
        for target in (repo, model):
            target.write_file("/a/edit.txt", b"v2")
            target.write_file("/b/new.txt", b"n")
        snapshots.append(dict(model.files))
        commit_oids.append(repo.commit("seed 2"))
        model.commit_entries()

        for operation in operations:
            kind = operation[0]
            if kind == "commit":
                expected_error = None
                try:
                    entries = model.commit_entries()
                except VCSError:
                    expected_error = VCSError
                if expected_error:
                    with pytest.raises(VCSError):
                        repo.commit("step")
                else:
                    oid = repo.commit("step")
                    commit_oids.append(oid)
                    snapshots.append(dict(model.files))
                continue
            if kind == "checkout":
                position = operation[1] % len(commit_oids)
                repo.checkout(commit_oids[position])
                model.files = dict(snapshots[position])
                model.index = {
                    path: model._blob_oid(data) for path, data in model.files.items()
                }
                model.head_entries = dict(model.index)
                continue
            if kind == "read":
                canonical = normalize_path(operation[1])
                expected = model.files.get(canonical)
                if expected is None:
                    with pytest.raises(VCSError):
                        repo.read_file(canonical)
                else:
                    assert repo.read_file(canonical) == expected
                continue
            if kind == "status":
                actual = repo.status()
                expected = model.status()
                assert actual.staged == expected["staged"]
                assert actual.modified == expected["modified"]
                assert actual.deleted == expected["deleted"]
                assert actual.untracked == expected["untracked"]
                continue
            if kind == "migrate":
                # Mid-session layout migration: the store facade keeps its
                # identity, so unmaterialised entries keep faulting fine.
                repo.store.migrate_backend(MemoryBackend())
                continue
            if kind == "adopt":
                # A different repository adopting the (possibly lazy) state
                # must commit a tree whose blobs all live in its own store.
                adopter = Repository.init("adopter", "bob")
                adopter.worktree = repo.worktree
                if adopter.worktree:
                    adopted_oid = adopter.commit("adopted")
                    tree_oid = adopter.store.get_commit(adopted_oid).tree_oid
                    for path, (oid, _) in flatten_files(adopter.store, tree_oid).items():
                        assert adopter.store.get_blob(oid).data == model.files[path]
                continue
            actual = _apply(repo, operation)
            expected = _apply(model, operation)
            assert actual == expected, f"diverged on {operation!r}"

        # Full materialisation at the end is byte-identical to the model.
        assert dict(repo.worktree) == model.files
        assert repo.list_files() == model.list_files()
        assert repo.list_directories() == model.list_directories()


class TestLazyCheckoutMechanics:
    def _two_commit_repo(self):
        """A freshly *cloned* repo whose checkout is fully lazy.

        (Checking out in the repo that just committed carries the already
        materialised bytes over, by design — a clone starts with none.)
        """
        source = Repository.init("lazy", "alice")
        for i in range(6):
            source.write_file(f"/src/f{i}.txt", f"content {i}\n")
        first = source.commit("seed")
        source.write_file("/src/f0.txt", "changed\n")
        second = source.commit("edit")
        from repro.vcs.remote import clone_repository

        return clone_repository(source), first, second

    def test_checkout_installs_lazy_entries_and_access_materializes(self):
        repo, first, _ = self._two_commit_repo()
        repo.checkout(first)
        worktree = repo.worktree
        assert worktree.lazy_count() == 6
        assert worktree.materialize_count == 0
        assert repo.read_file("/src/f3.txt") == b"content 3\n"
        assert worktree.materialize_count == 1
        assert worktree.lazy_count() == 5
        # Repeated access does not re-read.
        assert repo.read_file("/src/f3.txt") == b"content 3\n"
        assert worktree.materialize_count == 1

    def test_mutation_severs_laziness_per_path(self):
        repo, first, _ = self._two_commit_repo()
        repo.checkout(first)
        repo.write_file("/src/f1.txt", b"overwritten")
        worktree = repo.worktree
        assert repo.read_file("/src/f1.txt") == b"overwritten"
        assert worktree.materialize_count == 0  # the write never read the blob
        assert not worktree.is_stored("/src/f1.txt")
        status = repo.status()
        assert status.modified == ("/src/f1.txt",)

    def test_moves_carry_laziness_without_reading(self):
        repo, first, _ = self._two_commit_repo()
        repo.checkout(first)
        worktree = repo.worktree
        repo.move_file("/src/f2.txt", "/src/renamed.txt")
        assert worktree.materialize_count == 0
        assert worktree.is_stored("/src/renamed.txt")
        assert repo.read_file("/src/renamed.txt") == b"content 2\n"
        assert worktree.materialize_count == 1

    def test_switching_back_carries_materialized_bytes(self):
        repo, first, second = self._two_commit_repo()
        repo.checkout(first)
        repo.read_file("/src/f5.txt")  # materialise one blob
        count_after_read = repo.worktree.materialize_count
        assert count_after_read == 1
        repo.checkout(second)
        # '/src/f5.txt' is identical in both commits: its bytes were carried,
        # not re-read; only the changed file is still lazy plus the rest.
        assert repo.worktree.materialized_bytes(
            "/src/f5.txt", repo.worktree.fingerprint("/src/f5.txt")
        ) == b"content 5\n"
        assert repo.worktree.materialize_count == 0  # fresh state, no faults yet
        assert repo.read_file("/src/f5.txt") == b"content 5\n"
        assert repo.worktree.materialize_count == 0  # served from carried bytes

    def test_migrate_backend_keeps_lazy_entries_readable(self, tmp_path):
        from repro.vcs.storage import make_backend

        repo, first, _ = self._two_commit_repo()
        repo.checkout(first)
        assert repo.worktree.lazy_count() == 6
        repo.store.migrate_backend(make_backend("pack", tmp_path / "packs"))
        # The store facade kept its identity: faults read the new layout.
        assert repo.read_file("/src/f4.txt") == b"content 4\n"
        assert repo.worktree.materialize_count == 1

    def test_adoption_rebinds_blobs_into_the_new_store(self):
        from repro.vcs.treeops import flatten_files

        repo, first, _ = self._two_commit_repo()
        repo.checkout(first)
        other = Repository.init("other", "bob")
        other.worktree = repo.worktree  # adopt the lazy state wholesale
        commit_oid = other.commit("adopted")
        tree_oid = other.store.get_commit(commit_oid).tree_oid
        for path, (oid, _) in flatten_files(other.store, tree_oid).items():
            assert other.store.get_blob(oid).data == other.worktree[path]

    def test_full_materialisation_is_byte_identical(self):
        repo, first, _ = self._two_commit_repo()
        expected = repo.snapshot(first)
        repo.checkout(first)
        assert dict(repo.worktree.items()) == expected
        assert repo.worktree.lazy_count() == 0

    def test_failed_materialisation_leaves_the_entry_lazy(self):
        """A corrupt/missing backing blob raises on access but must not
        corrupt the view: the path stays present, lazy, and retryable."""
        from repro.errors import ObjectNotFoundError

        repo, first, _ = self._two_commit_repo()
        repo.checkout(first)
        worktree = repo.worktree
        repo.store.get_blob = lambda oid: (_ for _ in ()).throw(ObjectNotFoundError(oid))
        try:
            with pytest.raises(ObjectNotFoundError):
                repo.read_file("/src/f2.txt")
        finally:
            del repo.store.get_blob  # restore the real method
        assert "/src/f2.txt" in worktree
        assert len(worktree) == 6
        assert worktree.lazy_count() == 6
        assert worktree.materialize_count == 0
        # The store recovered: the same access now succeeds.
        assert repo.read_file("/src/f2.txt") == b"content 2\n"

    def test_file_size_answers_without_materialising(self):
        repo, first, _ = self._two_commit_repo()
        repo.checkout(first)
        assert repo.file_size("/src/f3.txt") == len(b"content 3\n")
        assert repo.worktree.materialize_count == 0
        assert repo.worktree.lazy_count() == 6
        with pytest.raises(VCSError):
            repo.file_size("/src/missing.txt")


class TestAddDirectoryRecordsDeletions:
    """``add(["dir"])`` unstages tracked files deleted beneath the directory
    (previously they were silently carried into the next commit)."""

    def test_raw_deletion_under_directory_is_unstaged(self):
        repo = Repository.init("adddir", "alice")
        repo.write_file("/d/a.txt", b"a")
        repo.write_file("/d/b.txt", b"b")
        repo.write_file("/other.txt", b"o")
        repo.commit("seed")
        del repo.worktree["/d/a.txt"]  # bypasses remove_file's index upkeep
        assert repo.index.get("/d/a.txt") is not None  # stale entry
        repo.add(["/d"])
        assert repo.index.get("/d/a.txt") is None
        commit_oid = repo.commit("drop", auto_add=False)
        from repro.vcs.treeops import flatten_files

        tree_oid = repo.store.get_commit(commit_oid).tree_oid
        assert "/d/a.txt" not in flatten_files(repo.store, tree_oid)
        assert "/d/b.txt" in flatten_files(repo.store, tree_oid)

    def test_stale_file_entry_at_directory_path_is_unstaged(self):
        repo = Repository.init("adddir", "alice")
        repo.write_file("/d", b"was a file")
        repo.add(["/d"])
        del repo.worktree["/d"]
        repo.write_file("/d/inner.txt", b"i")
        repo.add(["/d"])
        assert repo.index.get("/d") is None
        assert repo.index.get("/d/inner.txt") is not None

    def test_overlapping_paths_stage_once(self):
        repo = Repository.init("adddir", "alice")
        repo.write_file("/a/b/f.txt", b"f")
        repo.write_file("/a/g.txt", b"g")
        staged = repo.add(["/a", "/a/b", "/a/b/f.txt"])
        assert staged == ["/a/b/f.txt", "/a/g.txt"]

    def test_fully_vanished_directory_is_unstaged(self):
        """When *every* file under the staged directory vanished, the
        directory no longer exists in the worktree — the deletions must
        still be recorded, exactly as add(None) records them."""
        repo = Repository.init("adddir", "alice")
        repo.write_file("/d/a.txt", b"a")
        repo.write_file("/d/b.txt", b"b")
        repo.write_file("/other.txt", b"o")
        repo.commit("seed")
        del repo.worktree["/d/a.txt"]
        del repo.worktree["/d/b.txt"]
        assert repo.add(["/d"]) == []
        assert repo.index.get("/d/a.txt") is None
        assert repo.index.get("/d/b.txt") is None
        commit_oid = repo.commit("drop dir", auto_add=False)
        from repro.vcs.treeops import flatten_files

        tree_oid = repo.store.get_commit(commit_oid).tree_oid
        assert set(flatten_files(repo.store, tree_oid)) == {"/other.txt"}

    def test_unstage_deleted_under_directory_matches_add_all(self):
        left = Repository.init("left", "alice")
        right = Repository.init("right", "alice")
        for repo in (left, right):
            repo.write_file("/d/x.txt", b"x")
            repo.write_file("/d/y.txt", b"y")
            repo.commit("seed")
            del repo.worktree["/d/y.txt"]
        left.add(["/d"])
        right.add()
        assert left.index.entries() == right.index.entries()


class TestWorktreeStateMapping:
    def test_behaves_like_a_dict(self):
        state = WorktreeState({"/b": b"2", "/a": b"1"})
        assert state == {"/a": b"1", "/b": b"2"}
        assert {"/a": b"1", "/b": b"2"} == state
        assert list(state) == ["/a", "/b"]  # sorted iteration
        assert len(state) == 2 and "/a" in state and "/c" not in state
        state["/c/d"] = b"3"
        assert state.pop("/a") == b"1"
        assert state.get("/a") is None
        assert dict(state.items()) == {"/b": b"2", "/c/d": b"3"}
        state.update({"/b": b"2b"})
        assert state["/b"] == b"2b"
        del state["/b"]
        state.clear()
        assert state == {} and list(state) == []

    def test_indexes_follow_mutation(self):
        state = WorktreeState()
        state["/a/b/one.txt"] = b"1"
        state["/a/two.txt"] = b"2"
        assert state.has_directory("/a") and state.has_directory("/a/b")
        assert state.directories() == ["/", "/a", "/a/b"]
        assert state.files_under("/a") == ["/a/b/one.txt", "/a/two.txt"]
        del state["/a/b/one.txt"]
        assert not state.has_directory("/a/b")
        assert state.directories() == ["/", "/a"]

    def test_fingerprints_invalidate_on_every_mutation_path(self):
        state = WorktreeState()
        state["/f"] = b"one"
        oid_one = state.fingerprint("/f")
        assert oid_one == object_id("blob", b"one")
        state.mark_stored("/f", oid_one)
        state["/f"] = b"two"
        assert not state.is_stored("/f")
        assert state.fingerprint("/f") == object_id("blob", b"two")
        state.bulk_update({"/f": b"three", **{f"/bulk/{i}": b"x" for i in range(10)}})
        assert state.fingerprint("/f") == object_id("blob", b"three")
        state.mark_stored("/f", state.fingerprint("/f"))
        state.move_entry("/f", "/g")
        assert state.is_stored("/g")
        assert state.fingerprint("/g") == object_id("blob", b"three")
