"""Unit tests for the Repository facade: worktree, commits, branches, merges."""

import pytest

from repro.errors import CheckoutError, MergeConflictError, MergeError, RefError, VCSError
from repro.vcs.repository import Repository


@pytest.fixture
def repo() -> Repository:
    repo = Repository.init("demo", "alice")
    repo.write_file("README.md", "# demo\n")
    repo.write_file("src/app.py", "app = True\n")
    repo.commit("initial")
    return repo


class TestWorktree:
    def test_write_read_remove(self, repo):
        repo.write_file("notes.txt", "hello")
        assert repo.read_file("/notes.txt") == b"hello"
        assert repo.file_exists("notes.txt")
        repo.remove_file("notes.txt")
        assert not repo.file_exists("notes.txt")
        with pytest.raises(VCSError):
            repo.read_file("/notes.txt")

    def test_cannot_write_root_or_conflict_with_directory(self, repo):
        with pytest.raises(VCSError):
            repo.write_file("/", b"x")
        with pytest.raises(VCSError):
            repo.write_file("/src", b"x")  # /src is a directory
        with pytest.raises(VCSError):
            repo.write_file("/README.md/sub.txt", b"x")  # README.md is a file

    def test_move_file_and_directory(self, repo):
        repo.move_file("/src/app.py", "/src/application.py")
        assert repo.file_exists("/src/application.py")
        repo.write_file("/src/pkg/mod.py", "m")
        moves = repo.move_directory("/src", "/lib")
        assert moves["/src/application.py"] == "/lib/application.py"
        assert repo.file_exists("/lib/pkg/mod.py")
        assert not repo.directory_exists("/src")

    def test_remove_directory(self, repo):
        repo.write_file("/src/extra.py", "x")
        removed = repo.remove_directory("/src")
        assert "/src/app.py" in removed and "/src/extra.py" in removed
        with pytest.raises(VCSError):
            repo.remove_directory("/src")

    def test_list_files_and_directories(self, repo):
        repo.write_file("/docs/a/deep.md", "d")
        assert "/docs/a/deep.md" in repo.list_files()
        assert repo.list_files("/docs") == ["/docs/a/deep.md"]
        assert "/docs/a" in repo.list_directories()
        assert repo.directory_exists("/docs/a")

    def test_write_files_bulk_matches_write_file(self, repo):
        written = repo.write_files({"a/x.txt": "x", "/a/y.txt": b"y", "b.txt": "b"})
        assert written == ["/a/x.txt", "/a/y.txt", "/b.txt"]
        assert repo.read_file("/a/x.txt") == b"x"
        assert repo.read_file("/a/y.txt") == b"y"
        # Overwriting an existing file in a batch is legal, like write_file.
        repo.write_files({"/b.txt": "b2"})
        assert repo.read_file("/b.txt") == b"b2"

    def test_write_files_rejects_conflicts_like_write_file(self, repo):
        with pytest.raises(VCSError):
            repo.write_files({"/": b"x"})
        with pytest.raises(VCSError):
            repo.write_files({"/src": b"x"})  # /src is a directory
        with pytest.raises(VCSError):
            repo.write_files({"/README.md/sub.txt": b"x"})  # README.md is a file
        with pytest.raises(VCSError):
            # Conflict *within* the batch itself.
            repo.write_files({"/new/leaf.txt": b"a", "/new/leaf.txt/below.txt": b"b"})
        # Sibling with a lexicographically tricky name is NOT a conflict.
        repo.write_files({"/src/app.py!": b"bang", "/src/app.py2": b"two"})
        assert repo.read_file("/src/app.py!") == b"bang"


class TestCommits:
    def test_commit_advances_head(self, repo):
        first = repo.head_oid()
        repo.write_file("new.txt", "n")
        second = repo.commit("add new")
        assert repo.head_oid() == second
        assert repo.store.get_commit(second).parent_oids == (first,)

    def test_empty_commit_rejected_unless_allowed(self, repo):
        with pytest.raises(VCSError):
            repo.commit("nothing changed")
        oid = repo.commit("forced", allow_empty=True)
        assert repo.head_oid() == oid

    def test_commit_records_author_and_timestamp(self, repo):
        repo.write_file("x.txt", "x")
        oid = repo.commit("by bob", author_name="Bob")
        commit = repo.store.get_commit(oid)
        assert commit.author.name == "Bob"
        assert commit.committer.timestamp.year == 2018  # fixed clock fixture

    def test_snapshot_and_read_file_at(self, repo):
        first = repo.head_oid()
        repo.write_file("src/app.py", "app = False\n")
        repo.commit("flip flag")
        assert repo.read_file_at(first, "/src/app.py") == b"app = True\n"
        assert repo.read_file_at("HEAD", "/src/app.py") == b"app = False\n"
        snap = repo.snapshot(first)
        assert set(snap) == {"/README.md", "/src/app.py"}
        with pytest.raises(VCSError):
            repo.read_file_at(first, "/missing.txt")
        with pytest.raises(VCSError):
            repo.read_file_at(first, "/src")

    def test_status_reports_changes(self, repo):
        status = repo.status()
        assert status.is_clean
        repo.write_file("README.md", "changed\n")
        repo.write_file("untracked.txt", "new\n")
        repo.remove_file("/src/app.py")
        status = repo.status()
        assert "/README.md" in status.modified
        assert "/untracked.txt" in status.untracked
        assert "/src/app.py" in status.deleted


class TestBranchesAndCheckout:
    def test_create_checkout_and_log(self, repo):
        repo.create_branch("feature")
        repo.checkout("feature")
        repo.write_file("feature.txt", "f")
        repo.commit("feature work")
        assert repo.current_branch == "feature"
        repo.checkout("main")
        assert not repo.file_exists("feature.txt")
        assert [info.summary for info in repo.log()] == ["initial"]
        repo.checkout("feature")
        assert [info.summary for info in repo.log()] == ["feature work", "initial"]

    def test_checkout_detached(self, repo):
        first = repo.head_oid()
        repo.write_file("x.txt", "x")
        repo.commit("second")
        repo.checkout(first)
        assert repo.refs.is_detached
        assert not repo.file_exists("x.txt")

    def test_checkout_unknown_ref(self, repo):
        with pytest.raises(CheckoutError):
            repo.checkout("no-such-branch")

    def test_create_branch_requires_commit(self):
        empty = Repository.init("empty", "alice")
        with pytest.raises(RefError):
            empty.create_branch("x")

    def test_duplicate_branch_rejected(self, repo):
        repo.create_branch("dev")
        with pytest.raises(RefError):
            repo.create_branch("dev")

    def test_resolve_prefix_and_tag(self, repo):
        head = repo.head_oid()
        assert repo.resolve(head[:8]) == head
        repo.tag("v1.0", message="first release")
        assert repo.resolve("v1.0") == head
        with pytest.raises(RefError):
            repo.resolve("definitely-missing")

    def test_log_limit_and_order(self, repo):
        for index in range(3):
            repo.write_file(f"f{index}.txt", str(index))
            repo.commit(f"commit {index}")
        log = repo.log(limit=2)
        assert len(log) == 2
        assert log[0].summary == "commit 2"


class TestMerge:
    def _diverge(self, repo: Repository) -> None:
        repo.create_branch("side")
        repo.checkout("side")
        repo.write_file("side.txt", "side\n")
        repo.commit("side work")
        repo.checkout("main")
        repo.write_file("main.txt", "main\n")
        repo.commit("main work")

    def test_true_merge_has_two_parents(self, repo):
        self._diverge(repo)
        outcome = repo.merge("side")
        assert not outcome.fast_forward
        commit = repo.store.get_commit(outcome.commit_oid)
        assert len(commit.parent_oids) == 2
        assert repo.file_exists("side.txt") and repo.file_exists("main.txt")

    def test_fast_forward_merge(self, repo):
        repo.create_branch("ahead")
        repo.checkout("ahead")
        repo.write_file("ahead.txt", "a\n")
        tip = repo.commit("ahead work")
        repo.checkout("main")
        outcome = repo.merge("ahead")
        assert outcome.fast_forward and outcome.commit_oid == tip
        assert repo.file_exists("ahead.txt")

    def test_already_merged_branch_is_noop(self, repo):
        self._diverge(repo)
        repo.merge("side")
        outcome = repo.merge("side")
        assert outcome.fast_forward

    def test_conflict_requires_resolution(self, repo):
        repo.create_branch("b")
        repo.checkout("b")
        repo.write_file("README.md", "# b version\n")
        repo.commit("b edit")
        repo.checkout("main")
        repo.write_file("README.md", "# main version\n")
        repo.commit("main edit")
        with pytest.raises(MergeConflictError) as excinfo:
            repo.merge("b")
        assert excinfo.value.conflicts == ["/README.md"]
        outcome = repo.merge("b", resolutions={"/README.md": b"# resolved\n"})
        assert repo.read_file("/README.md") == b"# resolved\n"
        assert outcome.conflicts_resolved == ("/README.md",)

    def test_extra_files_are_injected_into_merge_commit(self, repo):
        self._diverge(repo)
        repo.merge("side", extra_files={"/merged-note.txt": b"injected\n"})
        assert repo.read_file("/merged-note.txt") == b"injected\n"

    def test_unrelated_histories_rejected(self, repo):
        stranger = Repository.init("other", "bob")
        stranger.write_file("s.txt", "s")
        tip = stranger.commit("stranger")
        stranger.store.copy_objects_to(repo.store)
        repo.refs.set_branch("stranger", tip)
        with pytest.raises(MergeError):
            repo.merge("stranger")
        outcome = repo.merge("stranger", allow_unrelated=True)
        assert repo.file_exists("/s.txt")
        assert len(repo.store.get_commit(outcome.commit_oid).parent_oids) == 2

    def test_prepare_merge_reports_base(self, repo):
        self._diverge(repo)
        prepared = repo.prepare_merge("side")
        assert prepared.base_oid is not None
        assert not prepared.fast_forward
        assert "/side.txt" in prepared.result.files
