"""Concurrency stress tests: the zero-lost-acknowledged-update guarantee.

The invariant under test everywhere in this file: once the hub acknowledges
a state change (a 2xx push, a ``True`` compare-and-swap, a counted quota
slot), no concurrent request may silently undo it.  Racing writers lose
*loudly* — a ``False`` CAS, a 422 non-fast-forward — and retry against the
new tips, exactly like sequential writers would.

These tests are deliberately thread-heavy but short; the CI workflow runs
them as their own step alongside the ``concurrent_push_pull`` benchmark.
"""

import threading

import pytest

from repro.errors import RemoteError, ValidationError
from repro.hub.api import RestApi
from repro.utils.hashing import object_id
from repro.hub.ratelimit import RateLimiter
from repro.hub.retry import RetryingApi, RetryPolicy
from repro.hub.server import HostingPlatform
from repro.hub.sync import HubRemote
from repro.vcs.merge import is_ancestor_commit
from repro.vcs.refs import RefStore
from repro.vcs.repository import Repository
from repro.vcs.storage.memory import MemoryBackend
from repro.vcs.storage.pack import PackBackend


def run_threads(workers) -> list:
    """Start every worker, join them all, and re-raise the first exception."""
    errors: list[BaseException] = []

    def guarded(worker):
        def run():
            try:
                worker()
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)
        return run

    threads = [threading.Thread(target=guarded(worker)) for worker in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return errors


class TestRefStoreCAS:
    def test_exactly_one_cas_winner(self):
        refs = RefStore()
        refs.set_branch("main", "a" * 40)
        outcomes = []
        lock = threading.Lock()

        def racer(index: int):
            won = refs.compare_and_swap_branch("main", "a" * 40, f"{index:040x}")
            with lock:
                outcomes.append(won)

        run_threads([lambda i=i: racer(i) for i in range(16)])
        assert outcomes.count(True) == 1
        assert refs.version == 2  # the seed set_branch + the single winner

    def test_cas_expected_none_means_must_not_exist(self):
        refs = RefStore()
        wins = []
        lock = threading.Lock()

        def creator(index: int):
            if refs.compare_and_swap_branch("feature", None, f"{index:040x}"):
                with lock:
                    wins.append(index)

        run_threads([lambda i=i: creator(i) for i in range(16)])
        assert len(wins) == 1
        assert refs.branch_target("feature") == f"{wins[0]:040x}"

    def test_version_counts_every_mutation(self):
        refs = RefStore()
        per_thread = 50

        def writer(index: int):
            for k in range(per_thread):
                refs.set_branch(f"branch-{index}", f"{index * per_thread + k:040x}")

        run_threads([lambda i=i: writer(i) for i in range(8)])
        assert refs.version == 8 * per_thread


class TestRateLimiterCounting:
    def test_no_double_spent_slots_under_contention(self):
        limiter = RateLimiter(authenticated_limit=10_000)
        per_thread = 200

        def consumer():
            for _ in range(per_thread):
                limiter.check("alice")

        run_threads([consumer] * 8)
        assert limiter.status("alice").used == 8 * per_thread

    def test_hard_limit_admits_exactly_limit_requests(self):
        limit = 64
        limiter = RateLimiter(authenticated_limit=limit)
        admitted = []
        lock = threading.Lock()

        def consumer():
            for _ in range(32):
                try:
                    limiter.check("alice")
                except Exception:
                    continue
                with lock:
                    admitted.append(1)

        run_threads([consumer] * 8)
        assert len(admitted) == limit


class TestBackendConcurrency:
    @pytest.mark.parametrize("make", [MemoryBackend, None], ids=["memory", "pack"])
    def test_parallel_writers_lose_nothing(self, make, tmp_path):
        backend = make() if make else PackBackend(tmp_path / "packs")
        per_thread = 100

        def writer(index: int):
            for k in range(per_thread):
                payload = f"payload {index}/{k}".encode()
                backend.write(object_id("blob", payload), "blob", payload)

        run_threads([lambda i=i: writer(i) for i in range(8)])
        backend.flush()
        assert len(backend) == 8 * per_thread
        probe = b"payload 3/7"
        assert backend.read(object_id("blob", probe)) == ("blob", probe)

    def test_readers_survive_concurrent_flush_and_repack(self, tmp_path):
        backend = PackBackend(tmp_path / "packs")
        seeded: dict[str, bytes] = {}
        for k in range(50):
            payload = f"seed {k}".encode()
            oid = object_id("blob", payload)
            backend.write(oid, "blob", payload)
            seeded[oid] = payload
        backend.flush()
        stop = threading.Event()

        def churn():
            batch = 0
            while not stop.is_set():
                for k in range(10):
                    filler = f"filler {batch}/{k}".encode() + b"x" * 64
                    backend.write(object_id("blob", filler), "blob", filler)
                backend.flush()
                backend.repack()
                batch += 1

        def reader():
            for _ in range(300):
                for oid, expected in seeded.items():
                    type_name, payload = backend.read(oid)
                    assert type_name == "blob"
                    assert payload == expected

        churner = threading.Thread(target=churn)
        churner.start()
        try:
            run_threads([reader] * 4)
        finally:
            stop.set()
            churner.join()
        for oid in seeded:
            assert oid in backend

    def test_object_store_cache_is_safe_under_parallel_reads(self, simple_repo):
        store = simple_repo.store
        oids = list(store.iter_oids())

        def reader():
            for _ in range(50):
                for oid in oids:
                    assert store.get(oid) is not None

        run_threads([reader] * 8)


class TestConcurrentPushes:
    """N writers race fast-forward pushes; no acknowledged update is lost."""

    @pytest.fixture
    def hub(self):
        repo = Repository.init("contended", "alice")
        repo.write_file("README.md", "contended repo\n")
        repo.commit("initial", author_name="alice")
        platform = HostingPlatform(rate_limiter=RateLimiter(enabled=False))
        platform.host_repository(repo)
        token = platform.issue_token("alice").value
        return platform, token

    def _remote(self, platform, token) -> HubRemote:
        api = RetryingApi(
            RestApi(platform),
            RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0),
        )
        return HubRemote(api, "alice/contended", token=token)

    def test_no_acknowledged_update_is_lost(self, hub):
        platform, token = hub
        writers, rounds = 8, 3
        acknowledged: list[str] = []
        lock = threading.Lock()

        def pusher(index: int):
            remote = self._remote(platform, token)
            local = remote.clone()
            for round_number in range(rounds):
                for _attempt in range(64):
                    try:
                        # Re-sync onto the current remote tip, commit a
                        # writer-unique change, push.  A losing racer gets a
                        # 422 non-fast-forward (surfacing here as
                        # ValidationError/RemoteError) and goes around again.
                        tip = remote.fetch_branch(local, "main")
                        local.refs.set_branch("main", tip)
                        local.checkout("main")
                        local.write_file(
                            f"writer-{index}.txt", f"round {round_number}\n"
                        )
                        oid = local.commit(
                            f"writer {index} round {round_number}",
                            author_name=f"writer-{index}",
                        )
                        remote.push(local, "main")
                    except (ValidationError, RemoteError):
                        continue
                    with lock:
                        acknowledged.append(oid)
                    break
                else:
                    raise AssertionError(f"writer {index} starved")

        run_threads([lambda i=i: pusher(i) for i in range(writers)])

        assert len(acknowledged) == writers * rounds
        hosted = platform.repositories["alice/contended"].repo
        final_tip = hosted.refs.branch_target("main")
        # The invariant: every acknowledged commit is reachable from the
        # final tip — an acknowledged push was never silently overwritten.
        for oid in acknowledged:
            assert is_ancestor_commit(hosted.store, oid, final_tip), (
                f"acknowledged commit {oid} lost from history"
            )
        # And the worktree reflects the committed tips: every writer's file
        # exists at its last acknowledged content.
        for index in range(writers):
            content = hosted.read_file_at("main", f"writer-{index}.txt")
            assert content == f"round {rounds - 1}\n".encode()
