"""Integration tests reproducing the paper's artifacts end to end.

These tests assert the *claims* the paper makes about its running example
(Figure 1), its demonstration scenario (Listing 1) and the browser-extension
behaviour (Figure 2); the corresponding benchmark harnesses print the same
checks as tables (see EXPERIMENTS.md).
"""

import json

import pytest

from repro.citation.citefile import CITATION_FILE_PATH
from repro.extension.client import ExtensionClient
from repro.extension.popup import PopupSession
from repro.workloads.scenarios import (
    LISTING1_EXPECTED_ENTRIES,
    LISTING1_EXPECTED_KEYS,
    build_demo_scenario,
    build_extension_scenario,
)


class TestRunningExampleFigure1:
    def test_v1_everything_resolves_to_root_c1(self, running_example):
        ex = running_example
        for path in ("/", "/f1.py", "/lib/util.py", "/lib/io.py"):
            assert ex.manager_p1.cite(path, ref=ex.v1).citation == ex.c1

    def test_addcite_changes_f1_from_c1_to_c2(self, running_example):
        ex = running_example
        assert ex.manager_p1.cite("/f1.py", ref=ex.v1).citation == ex.c1
        assert ex.manager_p1.cite("/f1.py", ref=ex.v2).citation == ex.c2
        # Other nodes are unaffected by the AddCite.
        assert ex.manager_p1.cite("/lib/util.py", ref=ex.v2).citation == ex.c1

    def test_v3_subtree_resolution_in_p2(self, running_example):
        ex = running_example
        assert ex.manager_p2.cite("/", ref=ex.v3).citation == ex.c3
        assert ex.manager_p2.cite("/green", ref=ex.v3).citation == ex.c4
        assert ex.manager_p2.cite("/green/f2.py", ref=ex.v3).citation == ex.c4
        assert not ex.manager_p2.cite("/green/f2.py", ref=ex.v3).is_explicit

    def test_copycite_preserves_f2_resolution_in_v4(self, running_example):
        """The paper: Cite(V3,P2)(f2) = C4 before, Cite(V4,P1)(f2) = C4 after."""
        ex = running_example
        before = ex.manager_p2.cite("/green/f2.py", ref=ex.v3).citation
        after = ex.manager_p1.cite("/green/f2.py", ref=ex.v4).citation
        assert before == after == ex.c4
        # The copied subtree root now carries an explicit citation in V4.
        assert ex.manager_p1.cite("/green", ref=ex.v4).is_explicit

    def test_v4_files_were_physically_copied(self, running_example):
        ex = running_example
        assert ex.p1.path_exists_at(ex.v4, "/green/f2.py")
        assert ex.p1.path_exists_at(ex.v4, "/green/nested/f3.py")
        assert not ex.p1.path_exists_at(ex.v2, "/green/f2.py")

    def test_mergecite_v5_unions_both_citation_functions(self, running_example):
        ex = running_example
        v5_function = ex.manager_p1.citation_function_at(ex.v5)
        assert set(v5_function.active_domain()) == {"/", "/f1.py", "/green"}
        assert ex.manager_p1.cite("/f1.py", ref=ex.v5).citation == ex.c2
        assert ex.manager_p1.cite("/green/f2.py", ref=ex.v5).citation == ex.c4
        assert ex.manager_p1.cite("/lib/io.py", ref=ex.v5).citation == ex.c1
        assert not ex.merge_outcome.citation_result.conflicts  # the example has no conflicts

    def test_v5_is_a_merge_commit_of_v2_and_v4(self, running_example):
        ex = running_example
        commit = ex.p1.store.get_commit(ex.v5)
        assert set(commit.parent_oids) == {ex.v2, ex.v4}

    def test_scenario_is_deterministic(self, running_example):
        from repro.workloads.scenarios import build_running_example

        rebuilt = build_running_example()
        assert rebuilt.v5 == running_example.v5
        assert rebuilt.p1.snapshot(rebuilt.v5) == running_example.p1.snapshot(running_example.v5)


class TestDemoScenarioListing1:
    def test_final_citation_file_has_exactly_the_listing1_keys(self, demo_scenario):
        payload = json.loads(demo_scenario.citation_file_text)
        assert sorted(payload) == sorted(LISTING1_EXPECTED_KEYS)

    @pytest.mark.parametrize("key", LISTING1_EXPECTED_KEYS)
    def test_entry_values_match_listing1(self, demo_scenario, key):
        payload = json.loads(demo_scenario.citation_file_text)
        actual = payload[key]
        for field, expected in LISTING1_EXPECTED_ENTRIES[key].items():
            assert actual[field] == expected, f"{key}: field {field}"

    def test_corecover_files_resolve_to_chen_li(self, demo_scenario):
        resolved = demo_scenario.manager.cite("/CoreCover/corecover.py")
        assert resolved.citation.owner == "Chen Li"
        assert resolved.source_path == "/CoreCover"

    def test_gui_files_credit_yanssie(self, demo_scenario):
        resolved = demo_scenario.manager.cite("/citation/GUI/main_window.py")
        assert resolved.citation.authors == ("Yanssie",)
        # Non-GUI files under /citation still credit the project root.
        assert demo_scenario.manager.cite("/citation/query_processor.py").citation.authors == ("Yinjun Wu",)

    def test_history_contains_copycite_and_mergecite(self, demo_scenario):
        messages = [info.summary for info in demo_scenario.citedb.log()]
        assert any("CopyCite" in message for message in messages)
        assert any("MergeCite" in message for message in messages)
        merge_commits = [
            info for info in demo_scenario.citedb.log() if info.commit.is_merge
        ]
        assert len(merge_commits) == 1

    def test_scenario_is_deterministic(self, demo_scenario):
        rebuilt = build_demo_scenario()
        assert rebuilt.citation_file_text == demo_scenario.citation_file_text


class TestExtensionScenarioFigure2:
    @pytest.fixture(scope="class")
    def scenario(self):
        return build_extension_scenario()

    def test_non_member_gets_generated_citation_and_no_buttons(self, scenario):
        popup = PopupSession(ExtensionClient(scenario.api))
        popup.sign_in(scenario.non_member_token)
        popup.open_repository(scenario.slug)
        view = popup.select_node("/CoreCover/corecover.py")
        assert not view.is_member
        assert "Chen Li" in view.text_box  # generated citation, copy-paste ready
        assert not view.add_enabled and not view.delete_enabled

    def test_member_sees_explicit_citation_for_cited_directory(self, scenario):
        popup = PopupSession(ExtensionClient(scenario.api))
        popup.sign_in(scenario.member_token)
        popup.open_repository(scenario.slug)
        view = popup.select_node("/citation/GUI")
        assert view.is_member
        assert '"Yanssie"' in view.text_box
        assert view.modify_enabled and view.delete_enabled and not view.add_enabled

    def test_member_empty_box_then_generate_then_add(self, scenario):
        popup = PopupSession(ExtensionClient(scenario.api))
        popup.sign_in(scenario.member_token)
        popup.open_repository(scenario.slug)
        view = popup.select_node("/schema/eagle_i.sql")
        assert view.text_box == "" and view.add_enabled
        popup.press_generate()
        popup.press_add()
        assert popup.select_node("/schema/eagle_i.sql").delete_enabled

    def test_extension_changes_are_commits_on_the_hosted_repository(self, scenario):
        hosted = scenario.platform.get_repository(scenario.slug)
        history = [info.summary for info in hosted.repo.log(limit=3)]
        assert any("via GitCite extension" in message for message in history)

    def test_citation_file_still_parses_after_extension_edits(self, scenario):
        hosted = scenario.platform.get_repository(scenario.slug)
        from repro.citation.citefile import load_citation_bytes

        data = hosted.repo.read_file_at("HEAD", CITATION_FILE_PATH)
        function = load_citation_bytes(data)
        assert function.has_root


class TestEndToEndCollaboration:
    def test_clone_edit_push_then_remote_citations_visible(self, demo_scenario):
        """The local-tool workflow: clone from the platform, work, push back."""
        from repro.citation.manager import CitationManager
        from repro.hub.server import HostingPlatform

        platform = HostingPlatform()
        platform.register_user("maintainer")
        demo = build_demo_scenario()
        demo.citedb.owner = "maintainer"
        platform.host_repository(demo.citedb)
        token = platform.issue_token("maintainer").value

        local = platform.clone("maintainer/Data_citation_demo")
        manager = CitationManager(local)
        citation = manager.default_root_citation(authors=["New Contributor"])
        local.write_file("/analysis/report.py", "# analysis\n")
        manager.add_cite("/analysis/report.py", citation)
        manager.commit("Add analysis with its citation")
        platform.receive_push("maintainer/Data_citation_demo", token, local)

        remote_manager = CitationManager(platform.get_repository("maintainer/Data_citation_demo").repo)
        resolved = remote_manager.cite("/analysis/report.py", ref="HEAD")
        assert resolved.citation.authors == ("New Contributor",)
