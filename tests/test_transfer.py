"""Tests for the sync subsystem: negotiation, bundles, sessions, gc pins.

Covers the PR 5 tentpole (repro.vcs.transfer) and its satellites: gc-clean
clones, the pull unborn-HEAD fix, the ObjectStore pin/lease registry, the
``gitcite bundle`` commands, and the hypothesis property that a negotiated
sync transfers exactly the objects missing on the receiver across storage
backend pairs and repeated divergent push/pull rounds.
"""

import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import BundleError, RemoteError
from repro.vcs.objects import Blob
from repro.vcs.remote import (
    clone_repository,
    fetch_branch,
    pull,
    push,
    reachable_objects,
    sync_objects,
)
from repro.vcs.repository import Repository
from repro.vcs.storage import make_backend
from repro.vcs.transfer import (
    advertise_refs,
    apply_bundle,
    common_tips,
    create_bundle,
    negotiate,
    read_bundle,
    update_refs_from_bundle,
    verify_bundle,
    write_bundle,
)
from repro.vcs.treeops import tree_closure


def make_repo(history=3, files_per_commit=4, name="origin", owner="alice", storage=None):
    repo = Repository.init(name, owner, storage=storage)
    for round_number in range(history):
        for slot in range(files_per_commit):
            repo.write_file(
                f"src/pkg{slot}/mod_{slot}.py",
                f"# revision {round_number} slot {slot}\n" + "body\n" * 20,
            )
        repo.commit(f"round {round_number}")
    return repo


def store_oids(repo):
    return set(repo.store.iter_oids())


# ---------------------------------------------------------------------------
# Frontier: negotiation and tree closures
# ---------------------------------------------------------------------------


class TestNegotiate:
    def test_full_negotiation_covers_reachable_set(self):
        repo = make_repo()
        tip = repo.head_oid()
        plan = negotiate(repo.store, [tip])
        assert set(plan.objects) == reachable_objects(repo.store, tip)
        assert plan.boundary == ()
        # Parents come before children in the commit order.
        positions = {oid: i for i, oid in enumerate(plan.new_commits)}
        for oid in plan.new_commits:
            for parent in repo.store.get_commit(oid).parent_oids:
                assert positions[parent] < positions[oid]

    def test_thin_negotiation_offers_only_new_objects(self):
        repo = make_repo(history=4)
        base = repo.head_oid()
        repo.write_file("src/pkg0/mod_0.py", "# touched\n")
        tip = repo.commit("touch one")
        plan = negotiate(repo.store, [tip], haves=[base])
        assert plan.boundary == (base,)
        assert plan.new_commits == (tip,)
        # One commit, the changed blob, and the dirty directory chain only.
        expected = reachable_objects(repo.store, tip) - reachable_objects(repo.store, base)
        assert set(plan.objects) == expected
        assert plan.objects_offered <= 5

    def test_unknown_haves_are_dropped(self):
        repo = make_repo()
        tip = repo.head_oid()
        plan = negotiate(repo.store, [tip], haves=["0" * 40, tip])
        assert plan.haves == (tip,)
        assert plan.objects == ()

    def test_unknown_want_raises(self):
        repo = make_repo()
        with pytest.raises(RemoteError):
            negotiate(repo.store, ["f" * 40])

    def test_want_that_is_not_a_commit_raises(self):
        repo = make_repo()
        blob_oid = repo.store.put(Blob(b"not a commit"))
        with pytest.raises(RemoteError):
            negotiate(repo.store, [blob_oid])

    def test_tree_closure_is_memoised_across_commits(self):
        repo = make_repo(history=3)
        tree_oids = [
            repo.store.get_commit(info.oid).tree_oid for info in repo.log()
        ]
        calls = {"n": 0}
        original_get_tree = repo.store.get_tree

        def counting_get_tree(oid):
            calls["n"] += 1
            return original_get_tree(oid)

        repo.store.get_tree = counting_get_tree
        cache = {}
        for tree_oid in tree_oids:
            tree_closure(repo.store, tree_oid, cache)
        # One get_tree per *distinct* tree across the whole history: shared
        # (unchanged) subtrees are served from the memo cache, never re-read.
        assert calls["n"] == len(cache)
        calls["n"] = 0
        for tree_oid in tree_oids:
            tree_closure(repo.store, tree_oid, cache)
        assert calls["n"] == 0  # fully memoised on revisit

    def test_common_tips_walks_back_from_an_ahead_receiver(self):
        origin = make_repo()
        local = clone_repository(origin)
        shared_tip = origin.head_oid()
        local.write_file("local-only.txt", "l")
        local.commit("local work")
        # The receiver (local) is ahead: its tip is unknown to origin, but
        # negotiation walks back to the shared commit instead of giving up.
        assert common_tips(origin.store, local) == [shared_tip]


# ---------------------------------------------------------------------------
# Bundle format
# ---------------------------------------------------------------------------


class TestBundleFormat:
    def _full_bundle(self, repo):
        tip = repo.head_oid()
        return create_bundle(
            repo.store, [tip], refs=advertise_refs(repo)
        ), tip

    def test_round_trip_preserves_objects_and_refs(self):
        repo = make_repo()
        data, tip = self._full_bundle(repo)
        bundle = read_bundle(data)
        assert bundle.branches == {"main": tip}
        assert bundle.head_branch == "main"
        objects = bundle.materialize()
        assert set(objects) == reachable_objects(repo.store, tip)
        for oid, (type_name, payload) in objects.items():
            assert repo.store.get_raw(oid) == (type_name, payload)

    def test_similar_blobs_are_delta_compressed(self):
        repo = Repository.init("deltas", "alice")
        # Low-redundancy body: zlib alone cannot shrink it much, so the
        # cross-blob delta is the only way to win.
        import hashlib as _hashlib

        body = "".join(
            _hashlib.sha256(str(i).encode()).hexdigest() + "\n" for i in range(200)
        )
        for i in range(6):
            repo.write_file(f"file_{i}.txt", body + f"tail {i}\n")
        repo.commit("similar blobs")
        data, _ = self._full_bundle(repo)
        bundle = read_bundle(data)
        kinds = {record.kind for record in bundle.records if record.type_name == "blob"}
        assert "delta" in kinds  # at least one blob rode as a delta
        assert bundle.materialize()  # and they all decode + re-hash cleanly

    def test_truncated_bundle_is_rejected(self):
        repo = make_repo()
        data, _ = self._full_bundle(repo)
        with pytest.raises(BundleError):
            read_bundle(data[: len(data) // 2])

    def test_bit_flip_fails_the_checksum(self):
        repo = make_repo()
        data, _ = self._full_bundle(repo)
        position = len(data) // 2
        corrupted = data[:position] + bytes([data[position] ^ 0xFF]) + data[position + 1:]
        with pytest.raises(BundleError, match="checksum"):
            read_bundle(corrupted)

    def test_bad_magic_rejected(self):
        with pytest.raises(BundleError, match="magic"):
            read_bundle(b"NOTABUNDLE\n")

    @staticmethod
    def _checksummed(body: bytes) -> bytes:
        import hashlib

        return body + f"checksum {hashlib.sha1(body).hexdigest()}\n".encode("ascii")

    def test_negative_record_size_rejected(self):
        # A negative csize would rewind the cursor and re-parse the same
        # header forever-ish; it must be rejected immediately.
        body = b"RBNDL1\nobjects 1\nfull blob " + b"a" * 40 + b" -18\n"
        with pytest.raises(BundleError, match="malformed object record"):
            read_bundle(self._checksummed(body))

    def test_implausible_object_count_rejected(self):
        # An attacker-chosen count must not drive the parse loop: anything
        # larger than the remaining body is rejected before the first record.
        body = b"RBNDL1\nobjects 2000000000\n"
        with pytest.raises(BundleError, match="implausible object count"):
            read_bundle(self._checksummed(body))

    def test_forged_record_fails_object_hash(self):
        # Rebuild a record under a wrong oid with a *valid* stream checksum:
        # the per-object re-hash must still catch it.
        repo = Repository.init("forge", "alice")
        repo.write_file("a.txt", "payload\n")
        repo.commit("c")
        good = repo.store.put(Blob(b"payload\n"))
        bad_oid = "f" * 40
        data = write_bundle(repo.store, [good])
        tampered = data.replace(good.encode("ascii"), bad_oid.encode("ascii"))
        import hashlib

        trailer = len("checksum ") + 40 + 1
        body = tampered[:-trailer]
        tampered = body + f"checksum {hashlib.sha1(body).hexdigest()}\n".encode("ascii")
        bundle = read_bundle(tampered)
        with pytest.raises(BundleError, match="hash"):
            bundle.materialize()


# ---------------------------------------------------------------------------
# Sessions: verified apply, atomicity, ref updates
# ---------------------------------------------------------------------------


class TestApplyBundle:
    def test_apply_installs_exactly_the_missing_objects(self):
        origin = make_repo()
        receiver = Repository.init("copy", "bob")
        before = store_oids(receiver)
        data = create_bundle(origin.store, [origin.head_oid()])
        result = apply_bundle(receiver.store, data)
        missing = reachable_objects(origin.store, origin.head_oid()) - before
        assert result.added_oids == frozenset(missing)
        assert result.objects_added == len(missing)
        # A second apply adds nothing.
        assert apply_bundle(receiver.store, data).objects_added == 0

    def test_corrupt_bundle_leaves_store_and_refs_untouched(self):
        origin = make_repo()
        receiver = Repository.init("copy", "bob")
        receiver.write_file("own.txt", "own")
        receiver.commit("own work")
        before_oids = store_oids(receiver)
        before_branches = receiver.refs.branches
        data = create_bundle(origin.store, [origin.head_oid()], refs=advertise_refs(origin))
        position = len(data) * 2 // 3
        corrupted = data[:position] + bytes([data[position] ^ 0x01]) + data[position + 1:]
        with pytest.raises(BundleError):
            apply_bundle(receiver.store, corrupted)
        with pytest.raises(BundleError):
            apply_bundle(receiver.store, data[:-30])
        assert store_oids(receiver) == before_oids
        assert receiver.refs.branches == before_branches

    def test_missing_prerequisite_rejected_before_any_write(self):
        origin = make_repo(history=3)
        base = origin.head_oid()
        origin.write_file("new.txt", "n")
        tip = origin.commit("tip")
        thin = create_bundle(origin.store, [tip], haves=[base])
        receiver = Repository.init("empty", "bob")
        before = store_oids(receiver)
        with pytest.raises(BundleError, match="prerequisite"):
            apply_bundle(receiver.store, thin)
        assert store_oids(receiver) == before

    def test_connectivity_check_catches_gaps(self):
        # Hand-build a bundle whose commit references a tree that is neither
        # in the bundle nor on the receiver.
        origin = make_repo()
        tip = origin.head_oid()
        data = write_bundle(origin.store, [tip])  # commit only, no trees/blobs
        receiver = Repository.init("empty", "bob")
        with pytest.raises(BundleError, match="neither in the bundle nor stored"):
            apply_bundle(receiver.store, data)
        assert len(receiver.store) == 0

    def test_verify_bundle_standalone_checks_hashes_only(self):
        origin = make_repo()
        data = write_bundle(origin.store, [origin.head_oid()])
        # Without a store, structural + hash verification passes even though
        # the bundle is not connected.
        assert verify_bundle(None, data)

    def test_update_refs_fast_forward_policy(self):
        origin = make_repo()
        local = clone_repository(origin)
        origin.write_file("ahead.txt", "a")
        new_tip = origin.commit("ahead")
        data = create_bundle(
            origin.store, [new_tip], haves=common_tips(origin.store, local),
            refs=advertise_refs(origin),
        )
        result = apply_bundle(local.store, data)
        updated = update_refs_from_bundle(local, result.bundle)
        assert updated == {"main": new_tip}
        assert local.head_oid() == new_tip  # current branch refreshed

    def test_update_refs_is_all_or_nothing(self):
        # A bundle carrying one perfectly applicable new branch AND one
        # non-fast-forward branch must change *no* refs when rejected.
        origin = make_repo()
        origin.create_branch("aa-extra")  # sorts before "main"
        local = clone_repository(origin)
        local.write_file("l.txt", "l")
        local.commit("diverge local")
        origin.checkout("aa-extra")
        origin.write_file("extra.txt", "e")
        origin.commit("extra work")
        origin.checkout("main")
        origin.write_file("r.txt", "r")
        origin.commit("diverge remote")
        wants = [origin.refs.branch_target("aa-extra"), origin.refs.branch_target("main")]
        data = create_bundle(
            origin.store, wants, haves=common_tips(origin.store, local),
            refs=advertise_refs(origin),
        )
        result = apply_bundle(local.store, data)
        branches_before = local.refs.branches
        with pytest.raises(RemoteError, match="non-fast-forward"):
            update_refs_from_bundle(local, result.bundle)
        # The applicable 'aa-extra' move was validated but not applied.
        assert local.refs.branches == branches_before

    def test_illegal_ref_name_in_bundle_rejected_before_any_move(self):
        # Ref names in a bundle are untrusted: an illegal one must fail the
        # validation phase as a BundleError with zero refs moved — never a
        # RefError escaping mid-apply with 'main' already updated.
        origin = make_repo()
        local = clone_repository(origin)
        origin.write_file("ahead.txt", "a")
        tip = origin.commit("ahead")
        data = write_bundle(
            origin.store,
            reachable_objects(origin.store, tip),
            branches={"main": tip, "zz~evil": tip},
        )
        result = apply_bundle(local.store, data)
        branches_before = local.refs.branches
        with pytest.raises(BundleError, match="illegal ref name"):
            update_refs_from_bundle(local, result.bundle)
        assert local.refs.branches == branches_before

    def test_tag_named_like_current_branch_does_not_checkout(self):
        # A *tag* called "main" arriving while branch main is unmoved must
        # not trigger a checkout — that would silently revert uncommitted
        # working-tree edits.
        origin = make_repo()
        local = clone_repository(origin)
        origin.tag("main")  # tag namespace, same name as the branch
        local.write_file("/dirty.txt", b"uncommitted edit")
        data = create_bundle(
            origin.store, [origin.head_oid()],
            haves=common_tips(origin.store, local), refs=advertise_refs(origin),
        )
        result = apply_bundle(local.store, data)
        updated = update_refs_from_bundle(local, result.bundle)
        assert updated == {"main": origin.head_oid()}  # the tag, reported once
        assert local.refs.tags == {"main": origin.head_oid()}
        assert local.read_file("/dirty.txt") == b"uncommitted edit"  # preserved

    def test_long_ref_names_round_trip(self):
        origin = make_repo()
        long_name = "release/" + "x" * 600  # legal: no length cap on ref names
        origin.create_branch(long_name)
        data = create_bundle(
            origin.store, [origin.head_oid()], refs=advertise_refs(origin)
        )
        bundle = read_bundle(data)
        assert long_name in bundle.branches

    def test_update_refs_rejects_non_fast_forward_without_force(self):
        origin = make_repo()
        local = clone_repository(origin)
        local.write_file("l.txt", "l")
        local.commit("diverge local")
        origin.write_file("r.txt", "r")
        diverged_tip = origin.commit("diverge remote")
        data = create_bundle(
            origin.store, [diverged_tip], haves=common_tips(origin.store, local),
            refs=advertise_refs(origin),
        )
        result = apply_bundle(local.store, data)
        local_tip = local.head_oid()
        with pytest.raises(RemoteError, match="non-fast-forward"):
            update_refs_from_bundle(local, result.bundle)
        assert local.head_oid() == local_tip
        updated = update_refs_from_bundle(local, result.bundle, force=True)
        assert updated["main"] == diverged_tip


# ---------------------------------------------------------------------------
# Satellites: gc-clean clone, unborn-HEAD pull, annotated tags
# ---------------------------------------------------------------------------


class TestCloneIsGcClean:
    def test_clone_leaves_dangling_objects_behind(self):
        origin = make_repo()
        # Pre-gc garbage: a blob no commit references.
        dangling = origin.store.put(Blob(b"orphaned bytes the gc would drop\n"))
        clone = clone_repository(origin)
        assert dangling in origin.store
        assert dangling not in clone.store
        assert store_oids(clone) >= reachable_objects(origin.store, origin.head_oid())
        assert clone.snapshot() == origin.snapshot()

    def test_clone_carries_annotated_tags(self):
        origin = make_repo()
        origin.tag("v1.0", message="first release")
        tag_objects = [
            oid for oid in origin.store.iter_oids()
            if origin.store.get_type(oid) == "tag"
        ]
        assert tag_objects
        clone = clone_repository(origin)
        for oid in tag_objects:
            assert oid in clone.store
        assert clone.refs.tags == origin.refs.tags

    def test_clone_of_empty_repository(self):
        origin = Repository.init("empty", "alice")
        clone = clone_repository(origin)
        assert clone.head_oid() is None
        assert len(clone.store) == 0


class TestPullUnbornHead:
    def test_pull_into_unborn_head_on_other_branch_keeps_head(self):
        origin = make_repo()
        local = Repository.init("local", "bob", default_branch="scratch")
        assert local.current_branch == "scratch" and local.head_oid() is None
        tip = pull(local, origin, branch="main")
        # The branch arrives, but HEAD must stay on the user's unborn branch.
        assert local.refs.branch_target("main") == tip
        assert local.current_branch == "scratch"
        assert local.head_oid() is None

    def test_pull_into_unborn_head_on_same_branch_attaches(self):
        origin = make_repo()
        local = Repository.init("local", "bob")  # unborn HEAD on main
        tip = pull(local, origin, branch="main")
        assert local.current_branch == "main"
        assert local.head_oid() == tip
        assert local.snapshot() == origin.snapshot()


# ---------------------------------------------------------------------------
# Satellite: the gc pin/lease registry
# ---------------------------------------------------------------------------


class TestGcLeases:
    def test_adopted_lazy_worktree_pins_donor_store(self):
        origin = make_repo()
        donor = clone_repository(origin)  # fresh checkout => fully lazy worktree
        assert donor.worktree.lazy_count() > 0
        borrower = Repository.init("borrower", "bob")
        borrower.worktree = donor.worktree  # adoption: detached lazy copy
        pinned = donor.store.pinned_oids()
        assert pinned  # the borrowed blob oids are pinned
        # A hostile gc (keep nothing) must refuse to drop the borrowed blobs.
        donor.store.gc(set())
        for path in list(borrower.worktree):
            assert borrower.worktree[path]  # faults still succeed

    def test_lease_released_after_full_materialisation(self):
        origin = make_repo()
        donor = clone_repository(origin)
        borrower = Repository.init("borrower", "bob")
        borrower.worktree = donor.worktree
        borrower.worktree.materialize_all()
        donor.worktree.materialize_all()
        assert donor.store.pinned_oids() == set()
        removed = donor.store.gc(set())
        assert removed == len(reachable_objects(origin.store, origin.head_oid()))

    def test_replaced_worktree_releases_its_lease(self):
        origin = make_repo()
        clone = clone_repository(origin)
        first_lease = clone.worktree.lease
        assert first_lease is not None and not first_lease.released
        clone.checkout("main")  # replaces the worktree wholesale
        assert first_lease.released

    def test_mutation_and_deletion_shrink_to_release(self):
        origin = make_repo(history=1, files_per_commit=2)
        clone = clone_repository(origin)
        assert clone.worktree.lease is not None
        paths = list(clone.worktree)
        clone.worktree[paths[0]] = b"severed"
        del clone.worktree[paths[1]]
        assert clone.worktree.lazy_count() == 0
        assert clone.worktree.lease is None

    def test_moving_every_lazy_entry_keeps_the_pin(self):
        # move_entries deletes every source before re-installing the lazy
        # destinations; the transiently empty lazy set must not strand the
        # surviving entries without a lease.
        origin = make_repo(history=1, files_per_commit=2)
        donor = clone_repository(origin)
        borrower = Repository.init("borrower", "bob")
        borrower.worktree = donor.worktree
        moves = {path: path + ".moved" for path in list(borrower.worktree)}
        borrower.worktree.move_entries(moves)
        assert borrower.worktree.lazy_count() == len(moves)
        assert borrower.worktree.lease is not None
        assert donor.store.pinned_oids()
        donor.store.gc(set())  # hostile gc: must keep the borrowed blobs
        for path in moves.values():
            assert borrower.worktree[path]

    def test_pin_api_direct(self):
        origin = make_repo()
        oid = origin.store.put(Blob(b"pinned garbage\n"))
        lease = origin.store.pin([oid])
        assert origin.store.gc(reachable_objects(origin.store, origin.head_oid())) == 0
        assert oid in origin.store
        lease.release()
        assert origin.store.gc(reachable_objects(origin.store, origin.head_oid())) == 1
        assert oid not in origin.store


# ---------------------------------------------------------------------------
# Exact-transfer property across backends and divergent rounds
# ---------------------------------------------------------------------------

_BACKEND_PAIRS = [("memory", "memory"), ("memory", "pack"), ("loose", "memory"), ("pack", "loose")]


def _make_backend_repo(kind, root, name, owner, default_branch="main"):
    storage = None if kind == "memory" else make_backend(kind, Path(root) / name)
    return Repository.init(name, owner, storage=storage, default_branch=default_branch)


def _assert_exact_sync(source, destination, wants):
    """Sync and assert the transfer is exactly the receiver's missing set."""
    expected_missing = set()
    for want in wants:
        expected_missing |= reachable_objects(source.store, want)
    expected_missing -= store_oids(destination)
    result = sync_objects(source, destination, wants)
    assert result.added_oids == frozenset(expected_missing)
    assert result.objects_added == len(expected_missing)
    for want in wants:
        # Byte-identical tips: same oid, same raw record on both sides.
        assert source.store.get_raw(want) == destination.store.get_raw(want)
    return result


class TestExactTransferProperty:
    @pytest.mark.parametrize("source_kind,dest_kind", _BACKEND_PAIRS)
    @settings(
        max_examples=12, deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_divergent_rounds_transfer_exactly_missing(self, source_kind, dest_kind, data):
        with tempfile.TemporaryDirectory() as tmp:
            upstream = _make_backend_repo(source_kind, tmp, "up", "alice")
            upstream.write_file("seed.txt", "seed\n")
            upstream.commit("seed")
            downstream = _make_backend_repo(dest_kind, tmp, "down", "bob")
            pull(downstream, upstream, branch="main")
            downstream.checkout("feature", create_branch=True)

            paths = [f"dir{i % 3}/file{i}.txt" for i in range(6)]
            rounds = data.draw(st.integers(min_value=1, max_value=4))
            for round_number in range(rounds):
                # Both sides advance on their own branches (divergent repo
                # state, fast-forwardable branches).
                for repo, branch in ((upstream, "main"), (downstream, "feature")):
                    for path in data.draw(
                        st.lists(st.sampled_from(paths), min_size=1, max_size=3, unique=True)
                    ):
                        repo.write_file(path, f"{branch} r{round_number} {path}\n")
                    repo.commit(f"{branch} round {round_number}")

                # downstream pulls main; upstream fetches feature.
                _assert_exact_sync(upstream, downstream, [upstream.refs.branch_target("main")])
                downstream.refs.set_branch("main", upstream.refs.branch_target("main"))
                _assert_exact_sync(
                    downstream, upstream, [downstream.refs.branch_target("feature")]
                )
                # Repeating either sync immediately transfers nothing.
                repeat = sync_objects(
                    upstream, downstream, [upstream.refs.branch_target("main")]
                )
                assert repeat.objects_added == 0

    @pytest.mark.parametrize("source_kind,dest_kind", _BACKEND_PAIRS)
    def test_push_pull_round_trip_across_backends(self, source_kind, dest_kind, tmp_path):
        origin = _make_backend_repo(source_kind, tmp_path, "origin", "alice")
        origin.write_file("a.txt", "a\n")
        origin.commit("initial")
        local = _make_backend_repo(dest_kind, tmp_path, "local", "bob")
        pull(local, origin, branch="main")
        assert local.snapshot() == origin.snapshot()
        local.write_file("b.txt", "b\n")
        tip = local.commit("feature")
        assert push(local, origin) == tip
        assert origin.head_oid() == tip
        assert origin.snapshot() == local.snapshot()


# ---------------------------------------------------------------------------
# fetch_branch still behaves (wire discipline preserved)
# ---------------------------------------------------------------------------


class TestFetchBranch:
    def test_incremental_fetch_offers_only_new_objects(self):
        origin = make_repo(history=5, files_per_commit=6)
        local = clone_repository(origin)
        origin.write_file("src/pkg0/mod_0.py", "# new revision\n")
        origin.commit("one more")
        before = store_oids(local)
        tip = fetch_branch(origin, local, "main")
        transferred = store_oids(local) - before
        # One commit + changed tree chain + one blob: a handful, not history.
        assert tip in transferred
        assert len(transferred) <= 5
