"""Tests for citing an extracted code base (repro.citation.extract)."""

import pytest

from repro.citation.extract import cite_extraction, render_bibliography
from repro.citation.function import CitationFunction


@pytest.fixture
def function(sample_citation, other_citation):
    function = CitationFunction.with_root(sample_citation)
    function.put("/CoreCover", other_citation, is_directory=True)
    function.put("/gui/app.py", sample_citation.with_changes(authors=("Yanssie",)), False)
    return function


class TestCiteExtraction:
    def test_groups_paths_by_covering_citation(self, function, sample_citation, other_citation):
        extraction = cite_extraction(
            function,
            ["/CoreCover/a.py", "/CoreCover/b.py", "/gui/app.py", "/README.md"],
        )
        assert extraction.distinct_count == 3
        main_entry = extraction.entries[0]  # most-covering first
        assert main_entry.citation == other_citation
        assert main_entry.covered_paths == ("/CoreCover/a.py", "/CoreCover/b.py")
        assert extraction.citation_for("/README.md") == sample_citation

    def test_single_citation_extraction(self, sample_citation):
        function = CitationFunction.with_root(sample_citation)
        extraction = cite_extraction(function, ["/a.py", "/deep/b.py"])
        assert extraction.distinct_count == 1
        assert extraction.entries[0].coverage == 2

    def test_identical_citation_values_group_even_from_different_sources(self, sample_citation):
        function = CitationFunction.with_root(sample_citation)
        function.put("/pkg", sample_citation, is_directory=True)  # same value, different key
        extraction = cite_extraction(function, ["/pkg/x.py", "/top.py"])
        assert extraction.distinct_count == 1

    def test_authors_across_the_extraction(self, function):
        extraction = cite_extraction(function, ["/CoreCover/a.py", "/gui/app.py", "/README.md"])
        assert set(extraction.authors()) == {"Chen Li", "Yanssie", "Yinjun Wu"}

    def test_empty_extraction(self, function):
        extraction = cite_extraction(function, [])
        assert extraction.distinct_count == 0
        assert extraction.authors() == []
        assert render_bibliography(extraction) == ""

    def test_paths_normalised(self, function, other_citation):
        extraction = cite_extraction(function, ["CoreCover/a.py"])
        assert extraction.citation_for("/CoreCover/a.py") == other_citation


class TestBibliographyRendering:
    def test_text_bibliography_lists_each_citation_once(self, function):
        extraction = cite_extraction(
            function, ["/CoreCover/a.py", "/CoreCover/b.py", "/gui/app.py"]
        )
        text = render_bibliography(extraction, "text")
        # One rendered citation per distinct citation value, not per covered path.
        assert text.count("@5cc951e") == 1
        assert "covers: /CoreCover/a.py, /CoreCover/b.py" in text

    def test_bibtex_bibliography_uses_comment_prefix(self, function):
        extraction = cite_extraction(function, ["/CoreCover/a.py", "/gui/app.py"])
        bib = render_bibliography(extraction, "bibtex")
        assert bib.count("@software{") == 2
        assert "% covers:" in bib

    def test_coverage_lines_can_be_suppressed(self, function):
        extraction = cite_extraction(function, ["/CoreCover/a.py"])
        assert "covers:" not in render_bibliography(extraction, "text", include_coverage=False)

    def test_demo_scenario_extraction_matches_listing1_credits(self, demo_scenario):
        function = demo_scenario.citation_function
        extraction = cite_extraction(
            function,
            ["/CoreCover/corecover.py", "/citation/GUI/main_window.py", "/citation/query_processor.py"],
        )
        owners = {entry.citation.owner for entry in extraction.entries}
        assert owners == {"Chen Li", "Yinjun Wu"}
        assert extraction.distinct_count == 3  # root, CoreCover and GUI citations all differ
