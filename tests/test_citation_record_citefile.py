"""Unit tests for citation records and the citation.cite file format."""

import json
from datetime import datetime, timezone

import pytest

from repro.errors import CitationFileError, InvalidCitationError
from repro.citation.citefile import (
    CITATION_FILE_PATH,
    dump_citation_bytes,
    dumps_citation_file,
    load_citation_bytes,
    loads_citation_file,
)
from repro.citation.function import CitationFunction
from repro.citation.record import Citation


class TestCitationRecord:
    def test_round_trip_through_dict(self, sample_citation):
        assert Citation.from_dict(sample_citation.to_dict()) == sample_citation

    def test_listing1_key_names(self, sample_citation):
        payload = sample_citation.to_dict()
        assert set(payload) >= {"repoName", "owner", "committedDate", "commitID", "url", "authorList"}
        assert payload["committedDate"] == "2018-09-04T02:35:20Z"
        assert payload["authorList"] == ["Yinjun Wu"]

    def test_missing_required_keys_rejected(self, sample_citation):
        payload = sample_citation.to_dict()
        del payload["commitID"]
        with pytest.raises(InvalidCitationError):
            Citation.from_dict(payload)

    def test_invalid_date_rejected(self, sample_citation):
        payload = sample_citation.to_dict()
        payload["committedDate"] = "yesterday"
        with pytest.raises(InvalidCitationError):
            Citation.from_dict(payload)

    def test_single_author_string_is_promoted_to_list(self, sample_citation):
        payload = sample_citation.to_dict()
        payload["authorList"] = "Yinjun Wu"
        assert Citation.from_dict(payload).authors == ("Yinjun Wu",)

    def test_unknown_fields_survive_round_trip(self, sample_citation):
        payload = sample_citation.to_dict()
        payload["customField"] = "kept"
        restored = Citation.from_dict(payload)
        assert ("customField", "kept") in restored.extra
        assert restored.to_dict()["customField"] == "kept"

    def test_validation_of_empty_fields(self):
        with pytest.raises(InvalidCitationError):
            Citation(
                repo_name="",
                owner="x",
                committed_date=datetime(2020, 1, 1, tzinfo=timezone.utc),
                commit_id="abc1234",
                url="https://example.org",
            )

    def test_with_changes_is_immutable_update(self, sample_citation):
        updated = sample_citation.with_changes(doi="10.5281/zenodo.1", authors=["A", "B"])
        assert updated.doi == "10.5281/zenodo.1"
        assert updated.authors == ("A", "B")
        assert sample_citation.doi is None  # original unchanged

    def test_convenience_properties(self, sample_citation):
        assert sample_citation.year == 2018
        assert sample_citation.primary_author == "Yinjun Wu"
        assert sample_citation.identity() == ("Yinjun Wu", "Data_citation_demo", "bbd248a")
        rendered = str(sample_citation)
        assert "Data_citation_demo" in rendered and "2018" in rendered

    def test_optional_fields_serialised_only_when_set(self, sample_citation):
        assert "doi" not in sample_citation.to_dict()
        assert "doi" in sample_citation.with_changes(doi="10.1/x").to_dict()


class TestCitationFile:
    def _function(self, sample_citation, other_citation) -> CitationFunction:
        function = CitationFunction.with_root(sample_citation)
        function.put("/CoreCover", other_citation, is_directory=True)
        function.put("/citation/core.py", sample_citation.with_changes(authors=("Wei Hu",)), False)
        return function

    def test_serialisation_uses_listing1_key_conventions(self, sample_citation, other_citation):
        text = dumps_citation_file(self._function(sample_citation, other_citation))
        payload = json.loads(text)
        assert set(payload) == {"/", "/CoreCover/", "/citation/core.py"}

    def test_round_trip(self, sample_citation, other_citation):
        function = self._function(sample_citation, other_citation)
        assert loads_citation_file(dumps_citation_file(function)) == function
        assert load_citation_bytes(dump_citation_bytes(function)) == function

    def test_serialisation_is_deterministic(self, sample_citation, other_citation):
        first = dumps_citation_file(self._function(sample_citation, other_citation))
        second = dumps_citation_file(self._function(sample_citation, other_citation))
        assert first == second

    def test_parse_accepts_listing1_style_keys(self, sample_citation):
        payload = {
            "/": sample_citation.to_dict(),
            ".../CoreCover/": sample_citation.to_dict(),
        }
        function = loads_citation_file(json.dumps(payload))
        assert function.entry("/CoreCover").is_directory

    def test_rejects_non_object_top_level(self):
        with pytest.raises(CitationFileError):
            loads_citation_file("[1, 2, 3]")

    def test_rejects_invalid_json(self):
        with pytest.raises(CitationFileError):
            loads_citation_file("{broken")

    def test_rejects_bad_entry_value(self, sample_citation):
        with pytest.raises(CitationFileError):
            loads_citation_file(json.dumps({"/": {"owner": "only"}}))

    def test_rejects_duplicate_keys_after_normalisation(self, sample_citation):
        payload = {
            "/a/": sample_citation.to_dict(),
            "a": sample_citation.to_dict(),
        }
        with pytest.raises(CitationFileError):
            loads_citation_file(json.dumps(payload))

    def test_rejects_invalid_utf8(self):
        with pytest.raises(CitationFileError):
            load_citation_bytes(b"\xff\xfe{}")

    def test_citation_file_path_constant(self):
        assert CITATION_FILE_PATH == "/citation.cite"
