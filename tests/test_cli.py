"""End-to-end tests for the ``gitcite`` command-line tool (the local executable)."""

import json

import pytest

from repro.cli.main import main
from repro.cli.storage import is_working_copy, load_repository


@pytest.fixture
def project(tmp_path):
    """A directory of source files turned into a citation-enabled working copy."""
    directory = tmp_path / "proj"
    directory.mkdir()
    (directory / "src").mkdir()
    (directory / "src" / "engine.py").write_text("engine = True\n")
    (directory / "README.md").write_text("# proj\n")
    assert main(["init", "-C", str(directory), "--owner", "alice", "--name", "proj"]) == 0
    assert main(["enable", "-C", str(directory), "--author", "Alice Smith"]) == 0
    return directory


def run(*argv: str) -> int:
    return main(list(argv))


def run_json(capsys, *argv: str) -> dict:
    """Run a command and parse its (fresh) stdout as JSON."""
    capsys.readouterr()  # discard output of earlier commands
    assert main(list(argv)) == 0
    return json.loads(capsys.readouterr().out)


class TestInitAndStatus:
    def test_init_creates_state_and_initial_commit(self, project):
        assert is_working_copy(project)
        repo = load_repository(project)
        assert repo.full_name == "alice/proj"
        assert repo.file_exists("/src/engine.py")

    def test_init_twice_fails(self, project, capsys):
        assert run("init", "-C", str(project), "--owner", "alice") == 1
        assert "already a gitcite working copy" in capsys.readouterr().err

    def test_status_and_log(self, project, capsys):
        assert run("status", "-C", str(project)) == 0
        out = capsys.readouterr().out
        assert "alice/proj" in out and "Citations  : enabled" in out
        assert run("log", "-C", str(project)) == 0
        assert "Enable citations" in capsys.readouterr().out

    def test_commands_on_non_working_copy_fail_cleanly(self, tmp_path, capsys):
        assert run("status", "-C", str(tmp_path)) == 1
        assert "not a gitcite working copy" in capsys.readouterr().err


class TestCitationCommands:
    def test_add_gen_modify_del_cycle(self, project, capsys):
        assert run("add-cite", "-C", str(project), "/src/engine.py",
                   "--author", "Bob Jones", "--title", "The engine", "--commit") == 0
        payload = run_json(capsys, "gen-cite", "-C", str(project), "/src/engine.py", "--format", "json")
        assert payload["authorList"] == ["Bob Jones"]

        assert run("modify-cite", "-C", str(project), "/src/engine.py",
                   "--author", "Carol", "--commit") == 0
        payload = run_json(capsys, "gen-cite", "-C", str(project), "/src/engine.py", "--format", "json")
        assert payload["authorList"] == ["Carol"]

        assert run("del-cite", "-C", str(project), "/src/engine.py", "--commit") == 0
        capsys.readouterr()
        assert run("gen-cite", "-C", str(project), "/src/engine.py", "--format", "json",
                   "--show-source") == 0
        out = capsys.readouterr().out
        assert "inherited from /" in out

    def test_gen_cite_inherits_from_root(self, project, capsys):
        assert run("gen-cite", "-C", str(project), "/README.md") == 0
        assert "Alice Smith" in capsys.readouterr().out

    def test_export_bibtex_to_file(self, project, tmp_path):
        target = tmp_path / "cite.bib"
        assert run("export", "-C", str(project), "/", "--format", "bibtex", "-o", str(target)) == 0
        assert target.read_text().startswith("@software{")

    def test_citations_listing(self, project, capsys):
        run("add-cite", "-C", str(project), "/README.md", "--author", "Doc Writer", "--commit")
        assert run("citations", "-C", str(project)) == 0
        out = capsys.readouterr().out
        assert "/README.md" in out and "Doc Writer" in out

    def test_add_cite_twice_fails(self, project, capsys):
        run("add-cite", "-C", str(project), "/README.md", "--commit")
        assert run("add-cite", "-C", str(project), "/README.md") == 1
        assert "already has an explicit citation" in capsys.readouterr().err

    def test_validate(self, project, capsys):
        assert run("validate", "-C", str(project)) == 0
        assert "consistent" in capsys.readouterr().out


class TestGitLevelCommands:
    def test_branch_checkout_merge_cite(self, project, capsys):
        # Create a branch, add a cited file there, merge it back with MergeCite.
        assert run("branch", "-C", str(project), "gui") == 0
        assert run("checkout", "-C", str(project), "gui") == 0
        (project / "gui_app.py").write_text("window = 1\n")
        assert run("commit", "-C", str(project), "-m", "gui work", "--author", "Yanssie") == 0
        assert run("add-cite", "-C", str(project), "/gui_app.py", "--author", "Yanssie", "--commit") == 0
        assert run("checkout", "-C", str(project), "main") == 0
        (project / "core_change.py").write_text("core = 2\n")
        assert run("commit", "-C", str(project), "-m", "core work") == 0
        assert run("merge-cite", "-C", str(project), "gui", "--strategy", "theirs") == 0
        assert "Merged gui into main" in capsys.readouterr().out
        payload = run_json(capsys, "gen-cite", "-C", str(project), "/gui_app.py", "--format", "json")
        assert payload["authorList"] == ["Yanssie"]
        assert (project / "gui_app.py").exists() and (project / "core_change.py").exists()

    def test_copy_cite_between_working_copies(self, project, tmp_path, capsys):
        upstream = tmp_path / "upstream"
        upstream.mkdir()
        (upstream / "CoreCover").mkdir()
        (upstream / "CoreCover" / "algo.py").write_text("algo\n")
        run("init", "-C", str(upstream), "--owner", "chenli", "--name", "alu01-corecover")
        run("enable", "-C", str(upstream), "--author", "Chen Li")
        assert run("copy-cite", "-C", str(project), str(upstream), "/CoreCover", "/CoreCover",
                   "--commit") == 0
        assert (project / "CoreCover" / "algo.py").exists()
        payload = run_json(capsys, "gen-cite", "-C", str(project), "/CoreCover/algo.py", "--format", "json")
        assert payload["owner"] == "chenli"

    def test_fork_cite_to_new_directory(self, project, tmp_path, capsys):
        destination = tmp_path / "fork"
        assert run("fork-cite", "-C", str(project), str(destination), "--owner", "carol") == 0
        assert is_working_copy(destination)
        payload = run_json(capsys, "gen-cite", "-C", str(destination), "/", "--format", "json")
        assert payload["owner"] == "carol"
        assert payload["forkedFrom"].startswith("alice/proj@")

    def test_mv_carries_citation(self, project, capsys):
        run("add-cite", "-C", str(project), "/src/engine.py", "--author", "Bob", "--commit")
        assert run("mv", "-C", str(project), "/src/engine.py", "/src/core_engine.py") == 0
        assert run("commit", "-C", str(project), "-m", "rename engine") == 0
        assert run("gen-cite", "-C", str(project), "/src/core_engine.py", "--format", "json",
                   "--show-source") == 0
        out = capsys.readouterr().out
        assert "explicitly attached" in out

    def test_retro_cite_on_plain_history(self, tmp_path, capsys):
        directory = tmp_path / "legacy"
        directory.mkdir()
        (directory / "a.py").write_text("a\n")
        run("init", "-C", str(directory), "--owner", "dana", "--name", "legacy")
        (directory / "b.py").write_text("b\n")
        run("commit", "-C", str(directory), "-m", "more code", "--author", "Evan")
        assert run("retro-cite", "-C", str(directory), "--granularity", "file") == 0
        out = capsys.readouterr().out
        assert "Retroactively cited dana/legacy" in out
        assert run("gen-cite", "-C", str(directory), "/a.py") == 0

    def test_unknown_branch_merge_fails_cleanly(self, project, capsys):
        assert run("merge-cite", "-C", str(project), "no-such-branch") == 1
        assert "error" in capsys.readouterr().err


class TestBundleCommands:
    def _other_copy(self, tmp_path):
        directory = tmp_path / "other"
        directory.mkdir()
        (directory / "seed.txt").write_text("other seed\n")
        assert run("init", "-C", str(directory), "--owner", "alice", "--name", "proj") == 0
        return directory

    def test_create_verify_unbundle_round_trip(self, project, tmp_path, capsys):
        bundle_file = tmp_path / "proj.bundle"
        assert run("bundle", "create", "-C", str(project), str(bundle_file)) == 0
        assert "object(s)" in capsys.readouterr().out
        assert bundle_file.is_file()

        assert run("bundle", "verify", "-C", str(project), str(bundle_file)) == 0
        assert "is valid" in capsys.readouterr().out
        # Standalone verification (no working copy around the file) also works.
        assert run("bundle", "verify", "-C", str(tmp_path), str(bundle_file)) == 0
        assert "standalone" in capsys.readouterr().out

        target = tmp_path / "restored"
        target.mkdir()
        assert run("init", "-C", str(target), "--owner", "alice", "--name", "proj",
                   "--allow-empty") == 0
        assert run("bundle", "unbundle", "-C", str(target), str(bundle_file),
                   "--force") == 0
        out = capsys.readouterr().out
        assert "refs updated" in out
        source = load_repository(project)
        restored = load_repository(target)
        assert restored.head_oid() == source.head_oid()
        assert restored.read_file("/src/engine.py") == source.read_file("/src/engine.py")

    def test_thin_bundle_with_basis(self, project, tmp_path, capsys):
        base = load_repository(project).head_oid()
        (project / "new.txt").write_text("incremental\n")
        assert run("commit", "-C", str(project), "-m", "add new.txt") == 0
        bundle_file = tmp_path / "thin.bundle"
        assert run("bundle", "create", "-C", str(project), str(bundle_file),
                   "--basis", base) == 0
        assert "thin against 1 prerequisite(s)" in capsys.readouterr().out

    def test_corrupt_bundle_fails_verify_and_unbundle(self, project, tmp_path, capsys):
        bundle_file = tmp_path / "proj.bundle"
        assert run("bundle", "create", "-C", str(project), str(bundle_file)) == 0
        raw = bundle_file.read_bytes()
        bundle_file.write_bytes(raw[: len(raw) - 40])  # truncate
        capsys.readouterr()
        assert run("bundle", "verify", "-C", str(project), str(bundle_file)) == 1
        assert "verification failed" in capsys.readouterr().err
        target = self._other_copy(tmp_path)
        before = load_repository(target).head_oid()
        assert run("bundle", "unbundle", "-C", str(target), str(bundle_file)) == 1
        assert "rejected" in capsys.readouterr().err
        assert load_repository(target).head_oid() == before

    def test_create_on_empty_repository_fails_cleanly(self, tmp_path, capsys):
        directory = tmp_path / "empty"
        directory.mkdir()
        assert run("init", "-C", str(directory), "--owner", "alice",
                   "--allow-empty") == 0
        # --allow-empty makes one commit; bundling a ref that exists is fine,
        # but an unknown --ref must fail with a one-line error.
        assert run("bundle", "create", "-C", str(directory),
                   str(tmp_path / "x.bundle"), "--ref", "no-such-ref") == 1
        assert "error" in capsys.readouterr().err

    def test_unbundle_non_fast_forward_is_rejected_cleanly(self, project, tmp_path, capsys):
        # Diverge: the target copy commits its own work, then tries to apply
        # a bundle whose 'main' is not a descendant.
        target = tmp_path / "diverged"
        import shutil

        shutil.copytree(project, target)
        (target / "local.txt").write_text("local divergence\n")
        assert run("commit", "-C", str(target), "-m", "local work") == 0
        (project / "remote.txt").write_text("remote divergence\n")
        assert run("commit", "-C", str(project), "-m", "remote work") == 0
        bundle_file = tmp_path / "diverged.bundle"
        assert run("bundle", "create", "-C", str(project), str(bundle_file)) == 0
        before = load_repository(target).head_oid()
        capsys.readouterr()
        assert run("bundle", "unbundle", "-C", str(target), str(bundle_file)) == 1
        assert "rejected" in capsys.readouterr().err
        assert load_repository(target).head_oid() == before
        # --force applies it.
        assert run("bundle", "unbundle", "-C", str(target), str(bundle_file),
                   "--force") == 0
        assert load_repository(target).head_oid() == load_repository(project).head_oid()
