"""The static-analysis engine: each rule catches its seeded violation.

Every test builds a miniature project under ``tmp_path`` — its own
``tools/layers.toml``, ``src/<pkg>/`` and optionally ``tests/`` — seeds
exactly one violation, and asserts the engine reports it (and nothing
else).  The final tests run the full rule set against the *real* tree:
the repository must analyze clean, which is the CI gate.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import run_analysis, write_baseline
from repro.analysis.core import BASELINE_PATH, Finding, load_baseline
from repro.cli.main import main as cli_main
from repro.errors import InvalidObjectError

REPO_ROOT = Path(__file__).resolve().parent.parent

_MINIMAL_LAYERS = """
[project]
package = "pkg"

[layers]
order = ["low", "high"]

[assign]
low = ["pkg.core"]
high = ["pkg", "pkg.app"]
"""


def make_project(tmp_path, files, layers=_MINIMAL_LAYERS, tests=None):
    """Write a fixture tree: layers.toml + src/pkg/* (+ tests/*)."""
    (tmp_path / "tools").mkdir()
    (tmp_path / "tools" / "layers.toml").write_text(layers)
    src = tmp_path / "src" / "pkg"
    src.mkdir(parents=True)
    (src / "__init__.py").write_text("")
    for name, body in files.items():
        target = src / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(body))
    if tests:
        tests_dir = tmp_path / "tests"
        tests_dir.mkdir()
        for name, body in tests.items():
            (tests_dir / name).write_text(textwrap.dedent(body))
    return tmp_path


def findings_for(root, rule):
    return [f for f in run_analysis(root, rules=[rule]).findings]


# ---------------------------------------------------------------------------
# layering
# ---------------------------------------------------------------------------


class TestLayering:
    def test_upward_import_is_flagged(self, tmp_path):
        root = make_project(tmp_path, {
            "core.py": "import pkg.app\n",
            "app.py": "VALUE = 1\n",
        })
        findings = findings_for(root, "layering")
        assert len(findings) == 1
        finding = findings[0]
        assert finding.path == "src/pkg/core.py"
        assert finding.line == 1
        assert "upward import" in finding.message
        assert "pkg.core" in finding.message and "pkg.app" in finding.message

    def test_downward_and_same_layer_imports_pass(self, tmp_path):
        root = make_project(tmp_path, {
            "core.py": "VALUE = 1\n",
            "app.py": "import pkg.core\nfrom pkg.core import VALUE\n",
        })
        assert findings_for(root, "layering") == []

    def test_relative_import_resolves_to_upward_edge(self, tmp_path):
        root = make_project(tmp_path, {
            "core.py": "from . import app\n",
            "app.py": "VALUE = 1\n",
        })
        findings = findings_for(root, "layering")
        assert len(findings) == 1
        assert "pkg.app" in findings[0].message

    def test_lazy_upward_import_still_flagged(self, tmp_path):
        root = make_project(tmp_path, {
            "core.py": "def late():\n    import pkg.app\n    return pkg.app\n",
            "app.py": "VALUE = 1\n",
        })
        assert len(findings_for(root, "layering")) == 1

    def test_allowlist_exact_source_prefix_target(self, tmp_path):
        layers = _MINIMAL_LAYERS + textwrap.dedent("""
            [[allow]]
            from = "pkg.core"
            to = "pkg.app"
            reason = "reviewed exception"
        """)
        root = make_project(tmp_path, {
            "core.py": "import pkg.app\n",
            "app.py": "VALUE = 1\n",
        }, layers=layers)
        assert findings_for(root, "layering") == []

    def test_allowlist_source_is_not_a_prefix(self, tmp_path):
        # An allow for pkg.core must NOT bless pkg.core.sub.
        layers = _MINIMAL_LAYERS.replace(
            'low = ["pkg.core"]', 'low = ["pkg.core"]'
        ) + textwrap.dedent("""
            [[allow]]
            from = "pkg.core"
            to = "pkg.app"
            reason = "reviewed exception"
        """)
        root = make_project(tmp_path, {
            "core/__init__.py": "",
            "core/sub.py": "import pkg.app\n",
            "app.py": "VALUE = 1\n",
        }, layers=layers)
        findings = findings_for(root, "layering")
        assert len(findings) == 1
        assert "pkg.core.sub" in findings[0].message

    def test_module_scope_cycle_is_flagged(self, tmp_path):
        root = make_project(tmp_path, {
            "core.py": "import pkg.other\n",
            "other.py": "import pkg.core\n",
        }, layers=_MINIMAL_LAYERS.replace(
            'low = ["pkg.core"]', 'low = ["pkg.core", "pkg.other"]'
        ))
        findings = findings_for(root, "layering")
        assert any("cycle" in f.message for f in findings)

    def test_function_scope_cycle_is_tolerated(self, tmp_path):
        root = make_project(tmp_path, {
            "core.py": "import pkg.other\n",
            "other.py": "def late():\n    import pkg.core\n",
        }, layers=_MINIMAL_LAYERS.replace(
            'low = ["pkg.core"]', 'low = ["pkg.core", "pkg.other"]'
        ))
        assert findings_for(root, "layering") == []

    def test_unassigned_module_is_flagged(self, tmp_path):
        root = make_project(tmp_path, {
            "core.py": "",
            "stray.py": "",
        }, layers=_MINIMAL_LAYERS.replace(
            'high = ["pkg", "pkg.app"]', 'high = ["pkg.app"]'
        ).replace('package = "pkg"', 'package = "pkg"'))
        findings = findings_for(root, "layering")
        assert any("pkg.stray" in f.message and "not assigned" in f.message
                   for f in findings)


# ---------------------------------------------------------------------------
# lock-discipline
# ---------------------------------------------------------------------------

_LOCKED_CLASS = """
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = {{}}  # guarded-by: _lock

        def bad(self, key, value):
            {mutation}

        def good(self, key, value):
            with self._lock:
                self._items[key] = value
"""


class TestLockDiscipline:
    @pytest.mark.parametrize("mutation", [
        "self._items[key] = value",
        "self._items.pop(key, None)",
        "del self._items[key]",
        "self._items.update({key: value})",
    ])
    def test_unlocked_mutation_is_flagged(self, tmp_path, mutation):
        root = make_project(tmp_path, {
            "core.py": _LOCKED_CLASS.format(mutation=mutation),
        })
        findings = findings_for(root, "lock-discipline")
        assert len(findings) == 1
        finding = findings[0]
        assert "Store.bad" in finding.message
        assert "_items" in finding.message
        assert "self._lock" in finding.message

    def test_init_and_locked_mutations_pass(self, tmp_path):
        root = make_project(tmp_path, {
            "core.py": _LOCKED_CLASS.format(
                mutation="with self._lock:\n                self._items[key] = value"
            ),
        })
        assert findings_for(root, "lock-discipline") == []

    def test_holds_lock_pragma_excuses_helper(self, tmp_path):
        root = make_project(tmp_path, {
            "core.py": """
                import threading

                class Store:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._items = {}  # guarded-by: _lock

                    def _evict(self, key):  # lint: holds-lock(_lock)
                        self._items.pop(key, None)
            """,
        })
        assert findings_for(root, "lock-discipline") == []

    def test_subclass_inherits_guard_contract(self, tmp_path):
        root = make_project(tmp_path, {
            "core.py": """
                import threading

                class Base:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._count = 0  # guarded-by: _lock

                class Child(Base):
                    def bump(self):
                        self._count += 1
            """,
        })
        findings = findings_for(root, "lock-discipline")
        assert len(findings) == 1
        assert "Child.bump" in findings[0].message


# ---------------------------------------------------------------------------
# durability
# ---------------------------------------------------------------------------


class TestDurability:
    def test_raw_write_open_is_flagged(self, tmp_path):
        root = make_project(tmp_path, {
            "core.py": 'def save(path, data):\n    with open(path, "w") as fh:\n        fh.write(data)\n',
        })
        findings = findings_for(root, "durability")
        assert len(findings) == 1
        assert findings[0].line == 2
        assert "open" in findings[0].message

    def test_os_replace_is_flagged(self, tmp_path):
        root = make_project(tmp_path, {
            "core.py": "import os\n\ndef swap(a, b):\n    os.replace(a, b)\n",
        })
        findings = findings_for(root, "durability")
        assert len(findings) == 1
        assert "os.replace" in findings[0].message

    def test_read_open_passes(self, tmp_path):
        root = make_project(tmp_path, {
            "core.py": 'def load(path):\n    with open(path, "rb") as fh:\n        return fh.read()\n',
        })
        assert findings_for(root, "durability") == []

    def test_pragma_excuses_append_log(self, tmp_path):
        root = make_project(tmp_path, {
            "core.py": 'def log(path, line):\n'
                       '    handle = open(path, "ab")  # lint: raw-write-ok(append-only log)\n'
                       '    handle.write(line)\n',
        })
        assert findings_for(root, "durability") == []


# ---------------------------------------------------------------------------
# exception-safety
# ---------------------------------------------------------------------------


class TestExceptionSafety:
    def test_bare_except_is_flagged(self, tmp_path):
        root = make_project(tmp_path, {
            "core.py": "def f():\n    try:\n        pass\n    except:\n        pass\n",
        })
        findings = findings_for(root, "exception-safety")
        assert len(findings) == 1
        assert "bare except:" in findings[0].message

    def test_base_exception_flagged_even_with_pragma(self, tmp_path):
        root = make_project(tmp_path, {
            "core.py": "def f():\n    try:\n        pass\n"
                       "    except BaseException:  # lint: broad-except-ok(nope)\n        pass\n",
        })
        findings = findings_for(root, "exception-safety")
        assert len(findings) == 1
        assert "BaseException" in findings[0].message

    def test_except_exception_needs_pragma(self, tmp_path):
        root = make_project(tmp_path, {
            "core.py": "def f():\n    try:\n        pass\n    except Exception:\n        pass\n",
        })
        findings = findings_for(root, "exception-safety")
        assert len(findings) == 1
        assert "except Exception" in findings[0].message

    def test_pragma_with_reason_passes(self, tmp_path):
        root = make_project(tmp_path, {
            "core.py": "def f():\n    try:\n        pass\n"
                       "    except Exception:  # lint: broad-except-ok(boundary handler)\n        pass\n",
        })
        assert findings_for(root, "exception-safety") == []

    def test_empty_reason_is_its_own_finding(self, tmp_path):
        root = make_project(tmp_path, {
            "core.py": "def f():\n    try:\n        pass\n"
                       "    except Exception:  # lint: broad-except-ok()\n        pass\n",
        })
        findings = findings_for(root, "exception-safety")
        assert len(findings) == 1
        assert "without a reason" in findings[0].message


# ---------------------------------------------------------------------------
# failpoint-coverage
# ---------------------------------------------------------------------------

_FAULTS_MODULE = """
    _CANONICAL = (
        "io.write",
        "io.sync",
    )

    def fire(name):
        pass

    def arm(name):
        pass
"""


class TestFailpointCoverage:
    def test_declared_never_fired(self, tmp_path):
        root = make_project(tmp_path, {
            "faults.py": _FAULTS_MODULE,
            "core.py": """
                from pkg import faults

                def write():
                    faults.fire("io.write")
            """,
        }, layers=_MINIMAL_LAYERS.replace(
            'low = ["pkg.core"]', 'low = ["pkg.core", "pkg.faults"]'
        ), tests={
            "test_core.py": (
                'from pkg import faults\n\n'
                'def test_write():\n'
                '    faults.arm("io.write")\n'
                '    faults.arm("io.sync")\n'
            ),
        })
        findings = findings_for(root, "failpoint-coverage")
        assert len(findings) == 1
        assert "'io.sync'" in findings[0].message
        assert "never fired" in findings[0].message

    def test_fired_undeclared_and_unarmed(self, tmp_path):
        root = make_project(tmp_path, {
            "faults.py": _FAULTS_MODULE.replace('\n        "io.sync",', ""),
            "core.py": """
                from pkg import faults

                def write():
                    faults.fire("io.write")
                    faults.fire("io.typo")
            """,
        }, layers=_MINIMAL_LAYERS.replace(
            'low = ["pkg.core"]', 'low = ["pkg.core", "pkg.faults"]'
        ))
        findings = findings_for(root, "failpoint-coverage")
        messages = [f.message for f in findings]
        assert any("undeclared failpoint 'io.typo'" in m for m in messages)
        assert any("'io.write' is never armed" in m for m in messages)

    def test_sweep_module_covers_arming(self, tmp_path):
        root = make_project(tmp_path, {
            "faults.py": _FAULTS_MODULE.replace('\n        "io.sync",', ""),
            "core.py": """
                from pkg import faults

                def write():
                    faults.fire("io.write")
            """,
        }, layers=_MINIMAL_LAYERS.replace(
            'low = ["pkg.core"]', 'low = ["pkg.core", "pkg.faults"]'
        ), tests={
            "test_sweep.py": (
                'from pkg import faults\n\n'
                'def test_sweep(registered_failpoints):\n'
                '    for name in registered_failpoints:\n'
                '        faults.arm(name)\n'
            ),
        })
        assert findings_for(root, "failpoint-coverage") == []


# ---------------------------------------------------------------------------
# docs-consistency
# ---------------------------------------------------------------------------


class TestDocsConsistency:
    def test_unmentioned_package_and_broken_link(self, tmp_path):
        root = make_project(tmp_path, {
            "core.py": "",
            "app.py": "",
        })
        docs = root / "docs"
        docs.mkdir()
        (docs / "ARCHITECTURE.md").write_text("Only core is described here.\n")
        (root / "README.md").write_text("[missing](docs/NOPE.md)\n")
        findings = findings_for(root, "docs-consistency")
        messages = [f.message for f in findings]
        assert any("pkg.app is not mentioned" in m for m in messages)
        assert any("broken link 'docs/NOPE.md'" in m for m in messages)

    def test_consistent_docs_pass(self, tmp_path):
        root = make_project(tmp_path, {"core.py": "", "app.py": ""})
        docs = root / "docs"
        docs.mkdir()
        (docs / "ARCHITECTURE.md").write_text("core and app, described.\n")
        (root / "README.md").write_text("[arch](docs/ARCHITECTURE.md)\n")
        assert findings_for(root, "docs-consistency") == []


# ---------------------------------------------------------------------------
# engine: baseline, selection, fingerprints
# ---------------------------------------------------------------------------


class TestEngine:
    def test_unknown_rule_raises(self, tmp_path):
        root = make_project(tmp_path, {"core.py": ""})
        with pytest.raises(ValueError, match="unknown rule"):
            run_analysis(root, rules=["no-such-rule"])

    def test_baseline_suppresses_known_findings(self, tmp_path):
        root = make_project(tmp_path, {
            "core.py": "def f():\n    try:\n        pass\n    except Exception:\n        pass\n",
        })
        first = run_analysis(root, rules=["exception-safety"])
        assert len(first.findings) == 1
        baseline = root / "tools" / "analysis_baseline.json"
        write_baseline(baseline, first.findings)
        second = run_analysis(root, rules=["exception-safety"], baseline=baseline)
        assert second.findings == []
        assert second.suppressed == 1

    def test_fingerprint_survives_line_drift(self):
        a = Finding(rule="r", path="p.py", line=3, message="m")
        b = Finding(rule="r", path="p.py", line=97, message="m")
        assert a.fingerprint == b.fingerprint
        assert a.fingerprint != Finding(rule="r", path="p.py", line=3, message="other").fingerprint

    def test_baseline_roundtrip(self, tmp_path):
        findings = [
            Finding(rule="layering", path="src/pkg/a.py", line=4, message="upward import: x"),
            Finding(rule="durability", path="src/pkg/b.py", line=9, message="raw open"),
        ]
        path = tmp_path / "baseline.json"
        write_baseline(path, findings)
        data = json.loads(path.read_text())
        assert len(data["accepted"]) == 2
        accepted = load_baseline(path)
        assert {f.fingerprint for f in findings} == accepted


# ---------------------------------------------------------------------------
# the real tree
# ---------------------------------------------------------------------------


class TestRealTree:
    def test_repository_analyzes_clean(self, capsys):
        """The CI gate: `gitcite analyze` exits 0 against this repository."""
        exit_code = cli_main(["analyze", "--root", str(REPO_ROOT)])
        output = capsys.readouterr().out
        assert exit_code == 0, f"analysis not clean:\n{output}"
        assert "analyze: clean" in output

    def test_list_rules_names_all_six(self, capsys):
        assert cli_main(["analyze", "--list-rules"]) == 0
        output = capsys.readouterr().out
        for rule_id in ("layering", "lock-discipline", "durability",
                        "exception-safety", "failpoint-coverage", "docs-consistency"):
            assert rule_id in output

    def test_single_rule_selection(self, capsys):
        exit_code = cli_main(["analyze", "--root", str(REPO_ROOT), "--rule", "layering"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "across 1 rule(s): layering" in output

    def test_committed_baseline_is_empty_or_justified(self):
        """The checked-in baseline must not hide findings silently."""
        baseline = REPO_ROOT / BASELINE_PATH
        assert baseline.is_file(), "tools/analysis_baseline.json must be committed"
        data = json.loads(baseline.read_text())
        assert data["accepted"] == [], (
            "the committed baseline should stay empty; prefer pragmas with "
            "reasons at the offending site over baselined fingerprints"
        )


# ---------------------------------------------------------------------------
# regression: the exception-safety fixes changed real behaviour
# ---------------------------------------------------------------------------


class TestDeserializeNormalisation:
    """deserialize_object now wraps parser leaks into InvalidObjectError."""

    def test_garbage_commit_payload_raises_typed_error(self):
        from repro.vcs.objects import deserialize_object

        with pytest.raises(InvalidObjectError) as excinfo:
            deserialize_object("commit", b"\xff\xfe not a commit at all")
        assert "malformed commit payload" in str(excinfo.value)

    def test_garbage_tree_payload_raises_typed_error(self):
        from repro.vcs.objects import deserialize_object

        with pytest.raises(InvalidObjectError):
            deserialize_object("tree", b"entry-without-structure\xff")

    def test_unknown_type_still_typed(self):
        from repro.vcs.objects import deserialize_object

        with pytest.raises(InvalidObjectError, match="unknown object type"):
            deserialize_object("gadget", b"")

    def test_fsck_references_tolerates_garbage_not_crashes(self):
        """_references narrows to VCSError: garbage yields no edges, and a
        non-VCS programming error would now surface instead of vanishing."""
        from repro.vcs.fsck import _references

        assert _references("commit", b"\xff\xfe garbage") == []
        assert _references("blob", b"anything") == []
