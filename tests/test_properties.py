"""Property-based tests (hypothesis) for the core data structures and invariants.

Four families of invariants are checked:

* path algebra (normalisation idempotence, ancestor ordering, prefix rewriting);
* citation functions (totality of ``Cite``, closest-ancestor semantics,
  serialisation round-trips, rename bijectivity);
* MergeCite (union semantics, totality of the merged function, conflict
  detection completeness, commutativity modulo conflict choice);
* the VCS substrate (content addressing, commit snapshot fidelity).
"""

from __future__ import annotations

import string
from datetime import datetime, timezone

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.citation.citefile import dumps_citation_file, loads_citation_file
from repro.citation.conflict import OursStrategy, TheirsStrategy
from repro.citation.function import CitationFunction
from repro.citation.merge import merge_citation_functions
from repro.citation.record import Citation
from repro.utils.paths import ROOT, ancestors, is_ancestor, join_path, normalize_path, rewrite_prefix
from repro.vcs.objects import Blob
from repro.vcs.repository import Repository

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

_component = st.text(alphabet=string.ascii_lowercase + string.digits + "_-", min_size=1, max_size=8)

paths = st.lists(_component, min_size=0, max_size=5).map(lambda parts: "/" + "/".join(parts))

nonroot_paths = st.lists(_component, min_size=1, max_size=5).map(lambda parts: "/" + "/".join(parts))


@st.composite
def citations(draw) -> Citation:
    owner = draw(_component)
    return Citation(
        repo_name=draw(_component),
        owner=owner,
        committed_date=datetime(2018, 1, 1, tzinfo=timezone.utc).replace(
            month=draw(st.integers(1, 12)), day=draw(st.integers(1, 28))
        ),
        commit_id=f"{draw(st.integers(0, 16**7 - 1)):07x}",
        url=f"https://example.org/{owner}",
        authors=tuple(draw(st.lists(_component, min_size=0, max_size=3))),
        title=draw(st.one_of(st.none(), _component)),
    )


@st.composite
def citation_functions(draw) -> CitationFunction:
    function = CitationFunction.with_root(draw(citations()))
    for path in draw(st.lists(nonroot_paths, max_size=6, unique=True)):
        function.put(path, draw(citations()), draw(st.booleans()))
    return function


SETTINGS = settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])


# ---------------------------------------------------------------------------
# Path algebra
# ---------------------------------------------------------------------------


class TestPathProperties:
    @given(paths)
    @SETTINGS
    def test_normalisation_is_idempotent(self, path):
        assert normalize_path(normalize_path(path)) == normalize_path(path)

    @given(paths)
    @SETTINGS
    def test_every_ancestor_is_an_ancestor(self, path):
        for ancestor in ancestors(path):
            assert is_ancestor(ancestor, path) or ancestor == normalize_path(path)

    @given(paths)
    @SETTINGS
    def test_ancestor_chain_ends_at_root_and_shrinks(self, path):
        chain = ancestors(path, include_self=True)
        assert chain[-1] == ROOT
        depths = [p.count("/") if p != ROOT else 0 for p in chain]
        assert depths == sorted(depths, reverse=True)

    @given(nonroot_paths, nonroot_paths)
    @SETTINGS
    def test_join_then_relative_round_trips(self, base, suffix):
        joined = join_path(base, suffix.lstrip("/"))
        assert is_ancestor(normalize_path(base), joined, strict=False)

    @given(nonroot_paths, nonroot_paths, nonroot_paths)
    @SETTINGS
    def test_rewrite_prefix_preserves_suffix(self, prefix, new_prefix, suffix):
        path = join_path(prefix, suffix.lstrip("/"))
        rewritten = rewrite_prefix(path, prefix, new_prefix)
        assert is_ancestor(normalize_path(new_prefix), rewritten, strict=False)
        assert rewritten.endswith(suffix if suffix != "/" else "")


# ---------------------------------------------------------------------------
# Citation functions
# ---------------------------------------------------------------------------


class TestCitationFunctionProperties:
    @given(citation_functions(), paths)
    @SETTINGS
    def test_cite_is_total_when_root_is_present(self, function, path):
        resolved = function.resolve(path)
        assert resolved.citation is not None
        assert resolved.source_path in function.active_domain()

    @given(citation_functions(), paths)
    @SETTINGS
    def test_resolution_source_is_the_closest_cited_ancestor(self, function, path):
        resolved = function.resolve(path)
        canonical = normalize_path(path)
        for candidate in ancestors(canonical, include_self=True):
            if candidate == resolved.source_path:
                break
            # No strictly closer ancestor may carry an explicit citation.
            assert candidate not in function.active_domain()

    @given(citation_functions())
    @SETTINGS
    def test_citefile_round_trip(self, function):
        assert loads_citation_file(dumps_citation_file(function)) == function

    @given(citation_functions())
    @SETTINGS
    def test_serialisation_is_deterministic(self, function):
        assert dumps_citation_file(function) == dumps_citation_file(function.copy())

    @given(citation_functions(), nonroot_paths, nonroot_paths)
    @SETTINGS
    def test_rename_prefix_preserves_entry_count_and_resolutions(self, function, old, new):
        if normalize_path(old) == normalize_path(new):
            return
        if is_ancestor(normalize_path(old), normalize_path(new), strict=False) or is_ancestor(
            normalize_path(new), normalize_path(old), strict=False
        ):
            return
        # Any entry already under `new` would collide after the move; skip those cases.
        if any(
            is_ancestor(normalize_path(new), e, strict=False)
            for e in function.active_domain()
        ):
            return
        before_count = len(function)
        explicit_before = {
            path: function.get_explicit(path)
            for path in function.active_domain()
            if is_ancestor(normalize_path(old), path, strict=False)
        }
        moves = function.rename_prefix(old, new)
        assert len(function) == before_count
        assert set(moves) == set(explicit_before)
        for moved_from, moved_to in moves.items():
            assert moved_to.startswith(normalize_path(new))
            # Each moved entry keeps its citation value at the re-rooted key.
            assert function.get_explicit(moved_to) == explicit_before[moved_from]
            assert moved_from not in function

    @given(citations(), paths)
    @SETTINGS
    def test_root_only_function_resolves_everything_to_root(self, citation, path):
        function = CitationFunction.with_root(citation)
        assert function.resolve(path).citation == citation


# ---------------------------------------------------------------------------
# MergeCite
# ---------------------------------------------------------------------------


class TestMergeProperties:
    @given(citation_functions(), citation_functions())
    @SETTINGS
    def test_merged_domain_is_the_union(self, ours, theirs):
        result = merge_citation_functions(ours, theirs, strategy=OursStrategy())
        merged_domain = set(result.function.active_domain())
        assert merged_domain == set(ours.active_domain()) | set(theirs.active_domain())

    @given(citation_functions(), citation_functions(), paths)
    @SETTINGS
    def test_merged_function_is_total(self, ours, theirs, probe):
        result = merge_citation_functions(ours, theirs, strategy=TheirsStrategy())
        assert result.function.resolve(probe).citation is not None

    @given(citation_functions(), citation_functions())
    @SETTINGS
    def test_conflicts_are_exactly_the_disagreeing_shared_keys(self, ours, theirs):
        result = merge_citation_functions(ours, theirs, strategy=OursStrategy())
        expected = {
            path
            for path in set(ours.active_domain()) & set(theirs.active_domain())
            if ours.get_explicit(path) != theirs.get_explicit(path)
        }
        assert set(result.conflict_paths) == expected

    @given(citation_functions(), citation_functions())
    @SETTINGS
    def test_merge_is_commutative_up_to_conflict_choice(self, ours, theirs):
        forward = merge_citation_functions(ours, theirs, strategy=OursStrategy())
        backward = merge_citation_functions(theirs, ours, strategy=TheirsStrategy())
        # "ours" in the forward direction and "theirs" in the backward direction
        # pick the same side of every conflict, so the results must agree.
        assert forward.function == backward.function

    @given(citation_functions())
    @SETTINGS
    def test_merge_with_self_is_identity_and_conflict_free(self, function):
        result = merge_citation_functions(function, function.copy())
        assert result.function == function
        assert not result.conflicts


# ---------------------------------------------------------------------------
# VCS substrate
# ---------------------------------------------------------------------------


class TestVCSProperties:
    @given(st.binary(max_size=256))
    @SETTINGS
    def test_blob_ids_are_content_addressed(self, data):
        assert Blob(data).oid == Blob(bytes(data)).oid
        assert Blob.deserialize(Blob(data).serialize()).data == data

    @given(
        st.dictionaries(
            nonroot_paths,
            st.text(alphabet=string.printable, max_size=60),
            min_size=1,
            max_size=8,
        )
    )
    @SETTINGS
    def test_commit_snapshot_round_trips_the_worktree(self, files):
        repo = Repository.init("prop", "tester")
        written = {}
        for path, content in files.items():
            try:
                written[repo.write_file(path, content)] = content.encode("utf-8")
            except Exception:
                # Paths that conflict (file vs directory) are legitimately rejected.
                continue
        if not written:
            return
        oid = repo.commit("snapshot")
        assert repo.snapshot(oid) == written

    @given(st.lists(st.binary(max_size=64), min_size=1, max_size=6))
    @SETTINGS
    def test_history_lengths_match_commit_count(self, payloads):
        repo = Repository.init("hist", "tester")
        count = 0
        for index, payload in enumerate(payloads):
            repo.write_file(f"file_{index}.bin", payload + bytes([index]))
            repo.commit(f"commit {index}")
            count += 1
        assert len(repo.log()) == count
