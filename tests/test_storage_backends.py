"""Tests for the pluggable object-storage subsystem (repro.vcs.storage).

The three backends must be oid-for-oid interchangeable: any object written
through one layout reads back identically through any other, transfers work
across heterogeneous backends, persistent layouts survive reopening, and
``repack()`` is idempotent.  The larger randomised interchangeability sweeps
are marked ``slow`` and excluded from the default (tier-1) run.
"""

from __future__ import annotations

import random
import zlib
from datetime import datetime, timezone

import pytest

from repro.errors import (
    CorruptObjectError,
    InvalidObjectError,
    ObjectNotFoundError,
    StorageError,
)
from repro.cli.main import main as cli_main
from repro.cli.storage import load_repository, reachable_from_refs, save_repository
from repro.utils.hashing import object_id
from repro.vcs.object_store import ObjectStore
from repro.vcs.objects import Blob, Commit, Signature, Tag, Tree, TreeEntry
from repro.vcs.remote import clone_repository, push
from repro.vcs.repository import Repository
from repro.vcs.storage import (
    LooseFileBackend,
    MemoryBackend,
    PackBackend,
    make_backend,
)
from repro.vcs.storage.pack import apply_delta, encode_delta

BACKEND_KINDS = ("memory", "loose", "pack")


def _new_backend(kind: str, tmp_path, label: str = "store"):
    if kind == "memory":
        return MemoryBackend()
    root = tmp_path / f"{label}-{kind}"
    return LooseFileBackend(root) if kind == "loose" else PackBackend(root)


#: Fixed timestamp so repeated calls to the object builders are deterministic
#: (the autouse clock *steps* on every ``now_utc()`` call).
_STAMP = datetime(2020, 5, 17, 9, 30, 0, tzinfo=timezone.utc)


def _sample_objects():
    """A small population covering all four object types."""
    signature = Signature(name="alice", email="alice@example.org", timestamp=_STAMP)
    blobs = [Blob(f"content {i}\n".encode() * (i + 1)) for i in range(6)]
    tree = Tree(entries=tuple(
        TreeEntry(name=f"file{i}.txt", oid=blob.oid) for i, blob in enumerate(blobs)
    ))
    commit = Commit(
        tree_oid=tree.oid, parent_oids=(), author=signature, committer=signature,
        message="sample",
    )
    tag = Tag(
        object_oid=commit.oid, object_type="commit", name="v1", tagger=signature,
        message="release",
    )
    return [*blobs, tree, commit, tag]


@pytest.fixture(params=BACKEND_KINDS)
def store(request, tmp_path) -> ObjectStore:
    """An ObjectStore over each backend kind in turn."""
    return ObjectStore(_new_backend(request.param, tmp_path))


class TestBackendRoundTrip:
    def test_put_get_all_object_types(self, store):
        for obj in _sample_objects():
            oid = store.put(obj)
            assert store.get(oid) == obj
            assert store.get_type(oid) == obj.type_name
            assert oid in store

    def test_get_survives_cache_eviction(self, tmp_path):
        for kind in BACKEND_KINDS:
            small_cache = ObjectStore(_new_backend(kind, tmp_path, "tiny"), cache_size=2)
            objects = _sample_objects()
            oids = small_cache.put_many(objects)
            small_cache.flush()
            for oid, obj in zip(oids, objects):
                assert small_cache.get(oid) == obj

    def test_missing_object_raises(self, store):
        with pytest.raises(ObjectNotFoundError):
            store.get("f" * 40)
        with pytest.raises(ObjectNotFoundError):
            store.get_type("f" * 40)

    def test_len_iter_and_object_ids_agree(self, store):
        oids = store.put_many(_sample_objects())
        assert len(store) == len(set(oids))
        assert sorted(store.iter_oids()) == sorted(set(oids))
        assert store.object_ids() == sorted(set(oids))

    def test_put_is_idempotent(self, store):
        blob = Blob(b"same bytes")
        assert store.put(blob) == store.put(blob)
        assert len(store) == 1

    def test_total_size_counts_payload_bytes(self, store):
        store.put(Blob(b"12345"))
        store.flush()
        assert store.total_size() >= 5


class TestInterchangeability:
    """The backends must be oid-for-oid interchangeable."""

    def test_same_objects_same_oids_across_backends(self, tmp_path):
        populations = {}
        for kind in BACKEND_KINDS:
            backend_store = ObjectStore(_new_backend(kind, tmp_path, "interop"))
            backend_store.put_many(_sample_objects())
            backend_store.flush()
            populations[kind] = {
                oid: backend_store.backend.read(oid) for oid in backend_store.iter_oids()
            }
        reference = populations["memory"]
        for kind in ("loose", "pack"):
            assert populations[kind] == reference

    @pytest.mark.parametrize("source_kind", BACKEND_KINDS)
    @pytest.mark.parametrize("destination_kind", BACKEND_KINDS)
    def test_copy_objects_across_heterogeneous_backends(
        self, tmp_path, source_kind, destination_kind
    ):
        source = ObjectStore(_new_backend(source_kind, tmp_path, "src"))
        destination = ObjectStore(_new_backend(destination_kind, tmp_path, "dst"))
        oids = source.put_many(_sample_objects())
        assert source.copy_objects_to(destination) == len(set(oids))
        assert source.copy_objects_to(destination) == 0  # idempotent
        destination.flush()
        for oid in oids:
            assert destination.get(oid) == source.get(oid)
        assert source.missing_from(destination) == []

    def test_copy_validates_before_mutating_across_backends(self, tmp_path):
        source = ObjectStore(_new_backend("loose", tmp_path, "vsrc"))
        destination = ObjectStore(_new_backend("pack", tmp_path, "vdst"))
        present = source.put(Blob(b"present"))
        missing = "0" * 40
        with pytest.raises(ObjectNotFoundError):
            source.copy_objects_to(destination, [present, missing])
        assert len(destination) == 0

    @pytest.mark.slow
    def test_randomised_population_is_interchangeable(self, tmp_path):
        """Hundreds of random objects: identical oid sets + payloads everywhere."""
        rng = random.Random(20260730)
        signature = Signature(name="bot", email="bot@example.org", timestamp=_STAMP)
        objects = []
        for _ in range(400):
            size = rng.randint(0, 4000)
            objects.append(Blob(bytes(rng.getrandbits(8) for _ in range(size))))
        for _ in range(40):
            sample = rng.sample(objects[:400], k=rng.randint(1, 12))
            objects.append(Tree(entries=tuple(
                TreeEntry(name=f"f{j}", oid=blob.oid) for j, blob in enumerate(sample)
            )))
        parent: tuple[str, ...] = ()
        for tree in [o for o in objects if isinstance(o, Tree)][:10]:
            commit = Commit(
                tree_oid=tree.oid, parent_oids=parent, author=signature,
                committer=signature, message="random commit",
            )
            objects.append(commit)
            parent = (commit.oid,)
        stores = {
            kind: ObjectStore(_new_backend(kind, tmp_path, "bulk")) for kind in BACKEND_KINDS
        }
        for kind_store in stores.values():
            kind_store.put_many(objects)
            kind_store.flush()
        oid_sets = {kind: set(s.iter_oids()) for kind, s in stores.items()}
        assert oid_sets["memory"] == oid_sets["loose"] == oid_sets["pack"]
        for oid in sorted(oid_sets["memory"]):
            reference = stores["memory"].backend.read(oid)
            assert stores["loose"].backend.read(oid) == reference
            assert stores["pack"].backend.read(oid) == reference


class TestPersistence:
    @pytest.mark.parametrize("kind", ("loose", "pack"))
    def test_reopen_sees_identical_objects(self, tmp_path, kind):
        first = ObjectStore(_new_backend(kind, tmp_path, "reopen"))
        oids = first.put_many(_sample_objects())
        first.close()
        root = first.backend.root
        reopened = ObjectStore(make_backend(kind, root))
        assert sorted(reopened.iter_oids()) == sorted(set(oids))
        for obj in _sample_objects():
            assert reopened.get(obj.oid) == obj

    def test_loose_scan_ignores_crash_leftover_tmp_files(self, tmp_path):
        """Regression: stray non-hex files must not become phantom oids."""
        backend = LooseFileBackend(tmp_path / "leftovers")
        store = ObjectStore(backend)
        oid = store.put(Blob(b"real object"))
        # Simulate a crash between write_bytes and the atomic rename.
        (backend.root / oid[:2] / f".tmp-{oid[2:]}-12345").write_bytes(b"partial")
        (backend.root / "no").mkdir()
        (backend.root / "no" / "t a valid name").write_bytes(b"junk")
        reopened = ObjectStore(LooseFileBackend(backend.root))
        assert sorted(reopened.iter_oids()) == [oid]
        assert reopened.clone().object_ids() == [oid]  # reads every object

    def test_loose_detects_corruption_on_read(self, tmp_path):
        backend = LooseFileBackend(tmp_path / "corrupt")
        store = ObjectStore(backend)
        oid = store.put(Blob(b"important data"))
        path = backend.root / oid[:2] / oid[2:]
        path.write_bytes(zlib.compress(b"blob 9\0different"))
        fresh = ObjectStore(LooseFileBackend(backend.root))
        with pytest.raises(CorruptObjectError):
            fresh.get(oid)

    def test_pack_index_is_rebuilt_when_missing(self, tmp_path):
        backend = PackBackend(tmp_path / "noidx")
        store = ObjectStore(backend)
        oids = store.put_many(_sample_objects())
        store.close()
        for index_file in backend.root.glob("*.idx"):
            index_file.unlink()
        reopened = ObjectStore(PackBackend(backend.root))
        assert sorted(reopened.iter_oids()) == sorted(set(oids))
        for obj in _sample_objects():
            assert reopened.get(obj.oid) == obj

    def test_make_backend_specs(self, tmp_path):
        assert make_backend(None).kind == "memory"
        assert make_backend("memory").kind == "memory"
        assert make_backend(f"loose:{tmp_path / 'spec'}").kind == "loose"
        assert make_backend("pack", tmp_path / "spec2").kind == "pack"
        existing = MemoryBackend()
        assert make_backend(existing) is existing
        with pytest.raises(StorageError):
            make_backend("loose")  # no directory
        with pytest.raises(StorageError):
            make_backend("granite", tmp_path)


class TestPackSpecifics:
    def test_delta_codec_round_trips(self):
        base = b"line one\nline two\nline three\n" * 40
        target = base.replace(b"line two", b"line 2") + b"appended tail\n"
        delta = encode_delta(base, target)
        assert apply_delta(base, delta) == target

    def test_similar_blobs_are_delta_compressed(self, tmp_path):
        backend = PackBackend(tmp_path / "delta")
        store = ObjectStore(backend)
        base_text = ("x = %d\n" * 400) % tuple(range(400))
        revisions = [
            Blob((base_text + f"# revision {i}\n").encode()) for i in range(6)
        ]
        store.put_many(revisions)
        store.flush()
        pack_path = next(backend.root.glob("*.pack"))
        content = pack_path.read_bytes()
        assert b"delta blob " in content
        loose_equivalent = sum(len(zlib.compress(blob.serialize())) for blob in revisions)
        assert pack_path.stat().st_size < loose_equivalent
        for blob in revisions:  # deltas must still read back exactly
            assert store.get(blob.oid) == blob

    def test_repack_is_idempotent(self, tmp_path):
        backend = PackBackend(tmp_path / "repack")
        store = ObjectStore(backend)
        store.put_many(_sample_objects()[:4])
        store.flush()
        store.put_many(_sample_objects()[4:])
        store.flush()
        assert backend.stats()["packs"] == 2
        before = {oid: backend.read(oid) for oid in backend.iter_oids()}
        first = backend.repack()
        assert first["packs_after"] == 1
        second = backend.repack()
        assert second["packs_after"] == 1
        assert second["objects_dropped"] == 0
        assert second["disk_bytes_after"] == first["disk_bytes_after"]
        assert {oid: backend.read(oid) for oid in backend.iter_oids()} == before

    def test_gc_drops_only_unreachable(self, tmp_path):
        backend = PackBackend(tmp_path / "gc")
        store = ObjectStore(backend)
        keep_blob = Blob(b"keep me")
        drop_blob = Blob(b"drop me")
        store.put_many([keep_blob, drop_blob])
        assert store.gc({keep_blob.oid}) == 1
        assert keep_blob.oid in store
        assert drop_blob.oid not in store
        assert store.get(keep_blob.oid) == keep_blob

    @pytest.mark.slow
    def test_repack_idempotent_over_random_population(self, tmp_path):
        rng = random.Random(7)
        backend = PackBackend(tmp_path / "bigrepack")
        store = ObjectStore(backend)
        for _ in range(12):  # several flushes -> several packs
            blobs = [
                Blob(bytes(rng.getrandbits(8) for _ in range(rng.randint(10, 2000))))
                for _ in range(25)
            ]
            store.put_many(blobs)
            store.flush()
        before = {oid: backend.read(oid) for oid in backend.iter_oids()}
        backend.repack()
        middle = {oid: backend.read(oid) for oid in backend.iter_oids()}
        backend.repack()
        after = {oid: backend.read(oid) for oid in backend.iter_oids()}
        assert before == middle == after
        assert backend.stats()["packs"] == 1


class TestMultiPackIndex:
    """The midx (PR 3): one merged fanout across all packs, cache-recoverable."""

    def _populate(self, root, batches=4, per_batch=5):
        backend = PackBackend(root)
        oids = []
        for batch in range(batches):
            for i in range(per_batch):
                payload = f"batch {batch} object {i}\n".encode() * (i + 1)
                oid = object_id("blob", payload)
                backend.write(oid, "blob", payload)
                oids.append(oid)
            backend.flush()
        backend.close()
        return oids

    def test_midx_written_on_flush_and_valid_on_reopen(self, tmp_path):
        root = tmp_path / "midx"
        oids = self._populate(root)
        assert (root / "multi-pack-index.midx").is_file()
        reopened = PackBackend(root)
        assert reopened.stats()["packs"] == 4
        assert reopened.stats()["midx"] is True
        assert sorted(reopened.iter_oids()) == sorted(oids)
        for oid in oids:
            assert reopened.read(oid)[1]
        reopened.close()

    def test_corrupt_midx_is_rebuilt(self, tmp_path):
        root = tmp_path / "corrupt"
        oids = self._populate(root)
        (root / "multi-pack-index.midx").write_bytes(b"garbage")
        reopened = PackBackend(root)
        for oid in oids:
            assert reopened.read(oid)[1]
        # The rebuild rewrote a valid midx file.
        assert (root / "multi-pack-index.midx").read_bytes().startswith(b"RMIDX1\n")
        reopened.close()

    def test_stale_midx_detected_when_pack_set_changes(self, tmp_path):
        root = tmp_path / "stale"
        oids = self._populate(root)
        # Simulate a pack added behind the midx's back (e.g. a crashed
        # flush from another process): copy an existing pack pair.
        new_payload = b"object that arrived behind the midx\n"
        new_oid = object_id("blob", new_payload)
        side = PackBackend(root / "side", use_midx=False)
        side.write(new_oid, "blob", new_payload)
        side.flush()
        side.close()
        for source in (root / "side").glob("pack-*"):
            (root / source.name).write_bytes(source.read_bytes())
        reopened = PackBackend(root)
        assert reopened.read(new_oid) == ("blob", new_payload)
        for oid in oids:
            assert reopened.read(oid)[1]
        reopened.close()

    def test_repack_refreshes_the_midx(self, tmp_path):
        root = tmp_path / "repackmidx"
        oids = self._populate(root)
        backend = PackBackend(root)
        backend.repack()
        assert backend.stats()["packs"] == 1
        assert sorted(backend.iter_oids()) == sorted(oids)
        backend.close()
        reopened = PackBackend(root)  # midx must match the new single pack
        assert reopened.stats()["midx"] is True
        for oid in oids:
            assert reopened.read(oid)[1]
        reopened.close()

    def test_without_midx_reads_still_work(self, tmp_path):
        root = tmp_path / "nomidx"
        oids = self._populate(root)
        backend = PackBackend(root, use_midx=False)
        assert backend.stats()["midx"] is False
        assert sorted(backend.iter_oids()) == sorted(oids)
        for oid in oids:
            assert backend.read(oid)[1]
        backend.close()

    def test_deltas_resolve_through_the_midx(self, tmp_path):
        backend = PackBackend(tmp_path / "deltamidx")
        store = ObjectStore(backend)
        base_text = ("y = %d\n" * 300) % tuple(range(300))
        revisions = [Blob((base_text + f"# rev {i}\n").encode()) for i in range(5)]
        store.put_many(revisions)
        store.flush()
        assert b"delta blob " in next(backend.root.glob("*.pack")).read_bytes()
        reopened = ObjectStore(PackBackend(tmp_path / "deltamidx"))
        for blob in revisions:
            assert reopened.get(blob.oid) == blob

    def test_handle_pool_eviction_keeps_reads_correct(self, tmp_path):
        root = tmp_path / "pool"
        oids = self._populate(root, batches=6, per_batch=4)
        backend = PackBackend(root, handle_limit=2)
        # Interleave reads across all six packs repeatedly: the pool must
        # evict and reopen handles without ever corrupting a read.
        for _ in range(3):
            for oid in oids:
                type_name, payload = backend.read(oid)
                assert object_id(type_name, payload) == oid
        assert backend.open_file_handles() <= 2
        backend.close()


class TestPrefixIndexInvalidation:
    """Regression: the sorted oid index must track *backend* writes, not puts."""

    @pytest.mark.parametrize("kind", BACKEND_KINDS)
    def test_resolve_prefix_sees_raw_backend_writes(self, tmp_path, kind):
        store = ObjectStore(_new_backend(kind, tmp_path, "prefix"))
        first = store.put(Blob(b"object zero"))
        assert store.resolve_prefix(first[:8]) == first  # index built here
        late = Blob(b"added behind the facade's back")
        store.backend.write(late.oid, late.type_name, late.serialize())
        assert store.resolve_prefix(late.oid[:8]) == late.oid

    def test_resolve_prefix_sees_objects_copied_in(self, tmp_path):
        source = ObjectStore(MemoryBackend())
        destination = ObjectStore(_new_backend("pack", tmp_path, "copyprefix"))
        seed = destination.put(Blob(b"seed"))
        assert destination.resolve_prefix(seed[:8]) == seed  # index built here
        incoming = source.put(Blob(b"incoming object"))
        source.copy_objects_to(destination)
        assert destination.resolve_prefix(incoming[:8]) == incoming

    def test_resolve_prefix_still_rejects_short_and_ambiguous(self, store):
        store.put(Blob(b"a"))
        with pytest.raises(InvalidObjectError):
            store.resolve_prefix("ab")


class TestRepositoryIntegration:
    def _build(self, storage) -> Repository:
        repo = Repository.init("demo", "alice", storage=storage)
        repo.write_file("src/main.py", "print('hi')\n")
        repo.write_file("docs/guide.md", "# guide\n")
        repo.commit("initial", author_name="alice", timestamp=_STAMP)
        repo.write_file("src/main.py", "print('hi there')\n")
        repo.commit("edit", author_name="alice", timestamp=_STAMP)
        return repo

    def test_repositories_agree_across_backends(self, tmp_path):
        repos = {
            kind: self._build(_new_backend(kind, tmp_path, "repo")) for kind in BACKEND_KINDS
        }
        heads = {kind: repo.head_oid() for kind, repo in repos.items()}
        assert len(set(heads.values())) == 1
        snapshots = {kind: repo.snapshot() for kind, repo in repos.items()}
        assert snapshots["memory"] == snapshots["loose"] == snapshots["pack"]

    def test_unknown_ref_on_pack_backend_raises_ref_error(self, tmp_path):
        """Regression: non-hex ref probes must not blow up the fanout lookup."""
        from repro.errors import RefError

        repo = self._build(_new_backend("pack", tmp_path, "refprobe"))
        repo.store.flush()  # ensure at least one pack file exists
        for bogus in ("no-such-ref", "-badly/formed", "zz" * 20):
            with pytest.raises(RefError):
                repo.resolve(bogus)
        assert ("f" * 40) not in repo.store

    def test_clone_and_push_from_persistent_backend(self, tmp_path):
        origin = self._build(_new_backend("pack", tmp_path, "origin"))
        local = clone_repository(origin, owner="bob")
        assert local.head_oid() == origin.head_oid()
        local.write_file("new.txt", "new\n")
        local.commit("add new file", author_name="bob")
        push(local, origin)
        assert origin.head_oid() == local.head_oid()
        assert origin.read_file_at("HEAD", "/new.txt") == b"new\n"

    def test_reachable_from_refs_covers_tags_and_branches(self, tmp_path):
        repo = self._build(_new_backend("loose", tmp_path, "reach"))
        repo.tag("v1", message="first release")
        keep = reachable_from_refs(repo)
        assert repo.head_oid() in keep
        for oid in repo.store.iter_oids():
            assert oid in keep  # everything here is reachable


class TestWorkingCopyLifecycle:
    """The acceptance path: loose working copy -> repack -> identical history."""

    def _working_copy(self, tmp_path, storage: str):
        directory = tmp_path / f"wc-{storage}"
        directory.mkdir()
        (directory / "a.txt").write_text("alpha\n")
        (directory / "b.txt").write_text("beta\n")
        assert cli_main(["init", "-C", str(directory), "--owner", "alice",
                         "--storage", storage]) == 0
        assert cli_main(["enable", "-C", str(directory), "--title", "Demo"]) == 0
        assert cli_main(["add-cite", "-C", str(directory), "/a.txt",
                         "--title", "Alpha", "--commit"]) == 0
        return directory

    def test_loose_repack_preserves_oids_and_citations(self, tmp_path):
        directory = self._working_copy(tmp_path, "loose")
        before = load_repository(directory)
        before_oids = before.store.object_ids()
        before_log = [(c.oid, c.summary) for c in before.log()]
        assert cli_main(["storage", "repack", "-C", str(directory)]) == 0
        after = load_repository(directory)
        assert after.store.backend.kind == "pack"
        assert after.store.object_ids() == before_oids
        assert [(c.oid, c.summary) for c in after.log()] == before_log
        from repro.citation.manager import CitationManager

        manager = CitationManager(after)
        assert manager.cite("/a.txt").citation.title == "Alpha"

    @pytest.mark.parametrize("source,target", [
        ("memory", "loose"), ("loose", "pack"), ("pack", "memory"),
    ])
    def test_migrate_between_layouts(self, tmp_path, source, target):
        directory = self._working_copy(tmp_path, source)
        before = load_repository(directory)
        before_oids = before.store.object_ids()
        assert cli_main(["storage", "migrate", "-C", str(directory), "--to", target]) == 0
        after = load_repository(directory)
        assert after.store.backend.kind == target
        assert after.store.object_ids() == before_oids
        # state.json records the surviving layout (written before the old
        # layout's directory was deleted — crash-window regression).
        import json as json_module

        state = json_module.loads((directory / ".gitcite" / "state.json").read_text())
        assert state["storage"] == target
        # The old layout's object directory is gone.
        leftovers = {p.name for p in (directory / ".gitcite").iterdir()}
        expected = {"state.json"} | ({"objects"} if target == "loose" else set())
        expected |= {"pack"} if target == "pack" else set()
        assert leftovers == expected

    def test_gc_removes_unreachable_objects(self, tmp_path):
        directory = self._working_copy(tmp_path, "pack")
        repo = load_repository(directory)
        orphan = Blob(b"never referenced by any commit")
        repo.store.put(orphan)
        save_repository(repo, directory)
        assert orphan.oid in load_repository(directory).store
        assert cli_main(["storage", "gc", "-C", str(directory)]) == 0
        cleaned = load_repository(directory)
        assert orphan.oid not in cleaned.store
        assert cleaned.head_oid() == repo.head_oid()

    def test_resave_via_other_path_spelling_is_not_destructive(self, simple_repo, tmp_path, monkeypatch):
        """Regression: relative-vs-absolute directory must not self-migrate."""
        directory = tmp_path / "spelling"
        save_repository(simple_repo, directory, storage="pack")
        monkeypatch.chdir(tmp_path)
        loaded = load_repository("spelling")  # backend root is relative
        save_repository(loaded, directory.resolve(), storage="pack")
        final = load_repository(directory)
        assert final.store.object_ids() == simple_repo.store.object_ids()
        assert final.head_oid() == simple_repo.head_oid()

    def test_save_respects_requested_storage(self, simple_repo, tmp_path):
        directory = tmp_path / "explicit"
        save_repository(simple_repo, directory, storage="pack")
        assert (directory / ".gitcite" / "pack").is_dir()
        loaded = load_repository(directory)
        assert loaded.store.backend.kind == "pack"
        assert loaded.head_oid() == simple_repo.head_oid()

    def test_repository_open_classmethod(self, simple_repo, tmp_path):
        directory = tmp_path / "open"
        save_repository(simple_repo, directory, storage="loose")
        opened = Repository.open(directory)
        assert opened.head_oid() == simple_repo.head_oid()
        switched = Repository.open(directory, storage="pack")
        assert switched.store.backend.kind == "pack"
        assert switched.head_oid() == simple_repo.head_oid()


def test_oid_contract_is_layout_independent():
    """The id function itself never consults storage."""
    blob = Blob(b"layout independence")
    assert blob.oid == object_id("blob", b"layout independence")
