"""Unit tests for tree diffs (rename detection) and three-way merges."""


from repro.vcs.diff import blob_similarity, diff_trees
from repro.vcs.merge import (
    BlobMergeResult,
    commit_ancestors,
    find_merge_base,
    is_ancestor_commit,
    merge_blobs,
    merge_trees,
)
from repro.vcs.object_store import ObjectStore
from repro.vcs.objects import Blob
from repro.vcs.repository import Repository
from repro.vcs.treeops import build_tree


def _tree(store, files: dict[str, bytes]) -> str:
    return build_tree(store, {path: (store.put(Blob(data)), "100644") for path, data in files.items()})


class TestDiffTrees:
    def test_added_deleted_modified(self):
        store = ObjectStore()
        old = _tree(store, {"/keep.txt": b"same", "/gone.txt": b"bye", "/edit.txt": b"v1"})
        new = _tree(store, {"/keep.txt": b"same", "/new.txt": b"hi", "/edit.txt": b"v2"})
        diff = diff_trees(store, old, new)
        assert diff.added_paths() == ["/new.txt"]
        assert diff.deleted_paths() == ["/gone.txt"]
        assert [e.path for e in diff.modified] == ["/edit.txt"]
        assert not diff.is_empty
        assert "1 added" in diff.summary()

    def test_exact_rename_detection(self):
        store = ObjectStore()
        old = _tree(store, {"/old/name.py": b"identical content"})
        new = _tree(store, {"/new/name.py": b"identical content"})
        diff = diff_trees(store, old, new)
        assert diff.renames() == {"/old/name.py": "/new/name.py"}
        assert diff.renamed[0].similarity == 1.0
        assert not diff.added and not diff.deleted

    def test_exact_rename_prefers_same_basename(self):
        store = ObjectStore()
        old = _tree(store, {"/a/f.py": b"same"})
        new = _tree(store, {"/b/other.py": b"same", "/c/f.py": b"same"})
        diff = diff_trees(store, old, new)
        assert diff.renames()["/a/f.py"] == "/c/f.py"

    def test_similarity_rename_detection(self):
        store = ObjectStore()
        content = "\n".join(f"line {i}" for i in range(50))
        edited = content.replace("line 10", "line ten")
        old = _tree(store, {"/module.py": content.encode()})
        new = _tree(store, {"/renamed_module.py": edited.encode()})
        diff = diff_trees(store, old, new)
        assert diff.renames() == {"/module.py": "/renamed_module.py"}
        assert 0.6 <= diff.renamed[0].similarity <= 1.0

    def test_rename_detection_can_be_disabled(self):
        store = ObjectStore()
        old = _tree(store, {"/a.py": b"content"})
        new = _tree(store, {"/b.py": b"content"})
        diff = diff_trees(store, old, new, detect_renames=False)
        assert not diff.renamed
        assert diff.added_paths() == ["/b.py"] and diff.deleted_paths() == ["/a.py"]

    def test_diff_against_empty_tree(self):
        store = ObjectStore()
        new = _tree(store, {"/a.py": b"x"})
        diff = diff_trees(store, None, new)
        assert diff.added_paths() == ["/a.py"]

    def test_identical_trees_empty_diff(self):
        store = ObjectStore()
        tree = _tree(store, {"/a.py": b"x"})
        assert diff_trees(store, tree, tree).is_empty

    def test_blob_similarity(self):
        store = ObjectStore()
        a = store.put(Blob(b"a\nb\nc\nd\n"))
        b = store.put(Blob(b"a\nb\nc\nD\n"))
        binary = store.put(Blob(b"\x00\x01"))
        assert blob_similarity(store, a, a) == 1.0
        assert 0.5 < blob_similarity(store, a, b) < 1.0
        assert blob_similarity(store, a, binary) == 0.0


class TestMergeBlobs:
    def _merge(self, base: bytes, ours: bytes, theirs: bytes) -> BlobMergeResult:
        store = ObjectStore()
        return merge_blobs(store, store.put(Blob(base)), store.put(Blob(ours)), store.put(Blob(theirs)))

    def test_non_overlapping_edits_both_applied(self):
        base = b"a\nb\nc\nd\ne\n"
        result = self._merge(base, b"A\nb\nc\nd\ne\n", b"a\nb\nc\nd\nE\n")
        assert result.data == b"A\nb\nc\nd\nE\n"
        assert not result.has_conflict

    def test_identical_edits_taken_once(self):
        base = b"a\nb\nc\n"
        result = self._merge(base, b"a\nX\nc\n", b"a\nX\nc\n")
        assert result.data == b"a\nX\nc\n"
        assert not result.has_conflict

    def test_conflicting_edits_produce_markers(self):
        base = b"a\nb\nc\n"
        result = self._merge(base, b"a\nOURS\nc\n", b"a\nTHEIRS\nc\n")
        assert result.has_conflict
        text = result.data.decode()
        assert "<<<<<<< ours" in text and ">>>>>>> theirs" in text
        assert "OURS" in text and "THEIRS" in text

    def test_one_side_unchanged_is_trivial(self):
        base = b"a\nb\n"
        result = self._merge(base, base, b"a\nb\nc\n")
        assert result.data == b"a\nb\nc\n"
        assert not result.has_conflict

    def test_missing_sides(self):
        store = ObjectStore()
        ours = store.put(Blob(b"content\n"))
        result = merge_blobs(store, None, ours, ours)
        assert result.data == b"content\n" and not result.has_conflict

    def test_binary_conflict_keeps_ours(self):
        store = ObjectStore()
        base = store.put(Blob(b"\x00base"))
        ours = store.put(Blob(b"\x00ours"))
        theirs = store.put(Blob(b"\x00theirs"))
        result = merge_blobs(store, base, ours, theirs)
        assert result.has_conflict and result.data == b"\x00ours"


class TestMergeTrees:
    def test_disjoint_additions_merge_cleanly(self):
        store = ObjectStore()
        base = _tree(store, {"/common.txt": b"base"})
        ours = _tree(store, {"/common.txt": b"base", "/ours.txt": b"o"})
        theirs = _tree(store, {"/common.txt": b"base", "/theirs.txt": b"t"})
        result = merge_trees(store, base, ours, theirs)
        assert set(result.files) == {"/common.txt", "/ours.txt", "/theirs.txt"}
        assert not result.has_conflicts

    def test_delete_vs_untouched_is_deleted(self):
        store = ObjectStore()
        base = _tree(store, {"/a.txt": b"x", "/b.txt": b"y"})
        ours = _tree(store, {"/b.txt": b"y"})
        theirs = _tree(store, {"/a.txt": b"x", "/b.txt": b"y"})
        result = merge_trees(store, base, ours, theirs)
        assert "/a.txt" not in result.files
        assert result.deleted_paths == ["/a.txt"]
        assert not result.has_conflicts

    def test_modify_vs_delete_conflicts(self):
        store = ObjectStore()
        base = _tree(store, {"/a.txt": b"v1"})
        ours = _tree(store, {"/a.txt": b"v2"})
        theirs = _tree(store, {})
        result = merge_trees(store, base, ours, theirs)
        assert result.conflicts == ["/a.txt"]
        assert result.files["/a.txt"] == b"v2"

    def test_add_add_different_content_conflicts(self):
        store = ObjectStore()
        base = _tree(store, {})
        ours = _tree(store, {"/new.txt": b"ours version\n"})
        theirs = _tree(store, {"/new.txt": b"theirs version\n"})
        result = merge_trees(store, base, ours, theirs)
        assert result.conflicts == ["/new.txt"]

    def test_both_deleted(self):
        store = ObjectStore()
        base = _tree(store, {"/a.txt": b"x"})
        empty = _tree(store, {})
        result = merge_trees(store, base, empty, empty)
        assert result.deleted_paths == ["/a.txt"] and not result.files


class TestMergeBase:
    def _history(self):
        repo = Repository.init("p", "o")
        repo.write_file("f.txt", "base\n")
        base = repo.commit("base")
        repo.create_branch("side")
        repo.write_file("main.txt", "m\n")
        main_tip = repo.commit("main work")
        repo.checkout("side")
        repo.write_file("side.txt", "s\n")
        side_tip = repo.commit("side work")
        return repo, base, main_tip, side_tip

    def test_find_merge_base(self):
        repo, base, main_tip, side_tip = self._history()
        assert find_merge_base(repo.store, main_tip, side_tip) == base
        assert find_merge_base(repo.store, main_tip, base) == base

    def test_unrelated_histories_have_no_base(self):
        repo_a = Repository.init("a", "o")
        repo_a.write_file("a.txt", "a")
        tip_a = repo_a.commit("a")
        repo_b = Repository.init("b", "o")
        repo_b.write_file("b.txt", "b")
        tip_b = repo_b.commit("b")
        repo_b.store.copy_objects_to(repo_a.store)
        assert find_merge_base(repo_a.store, tip_a, tip_b) is None

    def test_ancestor_queries(self):
        repo, base, main_tip, side_tip = self._history()
        assert is_ancestor_commit(repo.store, base, main_tip)
        assert not is_ancestor_commit(repo.store, main_tip, base)
        assert base in commit_ancestors(repo.store, side_tip)
        assert commit_ancestors(repo.store, base)[base] == 0
