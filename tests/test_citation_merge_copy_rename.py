"""Unit tests for MergeCite, CopyCite and rename propagation (pure-model level)."""


from repro.citation.conflict import AskUserStrategy, OursStrategy, TheirsStrategy
from repro.citation.copy import copy_citations
from repro.citation.function import CitationFunction
from repro.citation.merge import merge_citation_functions
from repro.citation.rename import propagate_diff, propagate_renames
from repro.vcs.diff import diff_trees
from repro.vcs.object_store import ObjectStore
from repro.vcs.objects import Blob
from repro.vcs.treeops import build_tree


class TestMergeCitationFunctions:
    def test_union_of_disjoint_domains(self, sample_citation, other_citation):
        ours = CitationFunction.with_root(sample_citation)
        ours.put("/ours.py", sample_citation, False)
        theirs = CitationFunction.with_root(sample_citation)
        theirs.put("/theirs.py", other_citation, False)
        result = merge_citation_functions(ours, theirs)
        assert set(result.function.active_domain()) == {"/", "/ours.py", "/theirs.py"}
        assert not result.conflicts and not result.has_unresolved

    def test_identical_values_do_not_conflict(self, sample_citation):
        ours = CitationFunction.with_root(sample_citation)
        theirs = CitationFunction.with_root(sample_citation)
        result = merge_citation_functions(ours, theirs)
        assert not result.conflicts

    def test_same_key_different_value_is_a_conflict(self, sample_citation, other_citation):
        ours = CitationFunction.with_root(sample_citation)
        ours.put("/shared.py", sample_citation, False)
        theirs = CitationFunction.with_root(sample_citation)
        theirs.put("/shared.py", other_citation, False)
        result = merge_citation_functions(ours, theirs)
        assert result.conflict_paths == ["/shared.py"]
        assert result.has_unresolved  # default ask strategy with no chooser

    def test_strategy_resolves_conflicts(self, sample_citation, other_citation):
        ours = CitationFunction.with_root(sample_citation)
        ours.put("/shared.py", sample_citation, False)
        theirs = CitationFunction.with_root(sample_citation)
        theirs.put("/shared.py", other_citation, False)
        result = merge_citation_functions(ours, theirs, strategy=TheirsStrategy())
        assert not result.has_unresolved
        assert result.function.get_explicit("/shared.py") == other_citation
        assert result.auto_resolved_count == 1

    def test_deleted_files_drop_their_entries(self, sample_citation, other_citation):
        ours = CitationFunction.with_root(sample_citation)
        ours.put("/kept.py", sample_citation, False)
        ours.put("/removed.py", other_citation, False)
        theirs = CitationFunction.with_root(sample_citation)
        result = merge_citation_functions(ours, theirs, surviving_paths={"/kept.py"})
        assert result.dropped_paths == ["/removed.py"]
        assert "/kept.py" in result.function.active_domain()
        assert result.function.has_root  # the root never needs to be listed

    def test_root_conflict_keeps_function_total(self, sample_citation, other_citation):
        ours = CitationFunction.with_root(sample_citation)
        theirs = CitationFunction.with_root(other_citation)
        result = merge_citation_functions(ours, theirs, strategy=AskUserStrategy())
        assert result.has_unresolved
        assert result.function.root_citation() == sample_citation  # provisional ours

    def test_base_is_used_to_classify_conflicts(self, sample_citation, other_citation):
        base = CitationFunction.with_root(sample_citation)
        base.put("/shared.py", sample_citation, False)
        ours = base.copy()
        theirs = base.copy()
        theirs.put("/shared.py", other_citation, True)  # only theirs changed
        result = merge_citation_functions(ours, theirs, base=base, strategy=OursStrategy())
        assert len(result.conflicts) == 1
        assert not result.conflicts[0].both_changed


class TestCopyCitations:
    def test_keys_are_rerooted(self, sample_citation, other_citation):
        source = CitationFunction.with_root(other_citation)
        source.put("/green", other_citation.with_changes(title="green"), True)
        source.put("/green/f2.py", other_citation.with_changes(title="f2"), False)
        destination = CitationFunction.with_root(sample_citation)
        result = copy_citations(source, "/green", destination, "/imported/green")
        assert result.migrated["/green/f2.py"] == "/imported/green/f2.py"
        assert destination.resolve("/imported/green/f2.py").citation.title == "f2"
        assert not result.root_citation_added

    def test_figure1_semantics_inherited_subtree_root_is_pinned(self, sample_citation, other_citation):
        # In V3, /green has no explicit citation: f2 resolves to C4 attached higher up.
        c4 = other_citation.with_changes(title="C4")
        source = CitationFunction.with_root(c4)  # C4 at the root of P2 here
        destination = CitationFunction.with_root(sample_citation)
        before = source.resolve("/green/f2.py").citation
        result = copy_citations(source, "/green", destination, "/green")
        assert result.root_citation_added
        after = destination.resolve("/green/f2.py").citation
        assert before == after == c4

    def test_copy_preserves_resolution_for_all_copied_nodes(self, sample_citation, other_citation):
        source = CitationFunction.with_root(other_citation)
        source.put("/pkg", other_citation.with_changes(title="pkg"), True)
        source.put("/pkg/sub/mod.py", other_citation.with_changes(title="mod"), False)
        destination = CitationFunction.with_root(sample_citation)
        copy_citations(source, "/pkg", destination, "/vendor/pkg")
        for old, new in (
            ("/pkg", "/vendor/pkg"),
            ("/pkg/sub", "/vendor/pkg/sub"),
            ("/pkg/sub/mod.py", "/vendor/pkg/sub/mod.py"),
        ):
            assert source.resolve(old).citation == destination.resolve(new).citation

    def test_overwrites_are_reported(self, sample_citation, other_citation):
        source = CitationFunction.with_root(other_citation)
        source.put("/dir", other_citation, True)
        destination = CitationFunction.with_root(sample_citation)
        destination.put("/dst", sample_citation, True)
        result = copy_citations(source, "/dir", destination, "/dst")
        assert result.overwritten == ["/dst"]
        assert destination.get_explicit("/dst") == other_citation


class TestRenamePropagation:
    def test_file_rename_moves_entry(self, sample_citation):
        function = CitationFunction.with_root(sample_citation)
        function.put("/old.py", sample_citation, False)
        result = propagate_renames(function, {"/old.py": "/new.py"})
        assert result.moved == {"/old.py": "/new.py"}
        assert function.resolve("/new.py").is_explicit
        assert "/old.py" not in function

    def test_unrelated_entries_untouched(self, sample_citation, other_citation):
        function = CitationFunction.with_root(sample_citation)
        function.put("/keep.py", other_citation, False)
        propagate_renames(function, {"/other.py": "/moved.py"})
        assert function.get_explicit("/keep.py") == other_citation

    def test_directory_move_inferred_from_file_renames(self, sample_citation, other_citation):
        function = CitationFunction.with_root(sample_citation)
        function.put("/src", other_citation, True)
        renames = {"/src/a.py": "/lib/a.py", "/src/b.py": "/lib/b.py"}
        result = propagate_renames(function, renames)
        assert result.directory_moves == {"/src": "/lib"}
        assert function.get_explicit("/lib") == other_citation

    def test_inconsistent_file_moves_do_not_move_directory(self, sample_citation, other_citation):
        function = CitationFunction.with_root(sample_citation)
        function.put("/src", other_citation, True)
        renames = {"/src/a.py": "/lib/a.py", "/src/b.py": "/elsewhere/b.py"}
        result = propagate_renames(function, renames)
        assert not result.directory_moves
        assert function.get_explicit("/src") == other_citation

    def test_propagate_from_tree_diff(self, sample_citation):
        store = ObjectStore()
        old = build_tree(store, {"/old_name.py": (store.put(Blob(b"same content")), "100644")})
        new = build_tree(store, {"/new_name.py": (store.put(Blob(b"same content")), "100644")})
        diff = diff_trees(store, old, new)
        function = CitationFunction.with_root(sample_citation)
        function.put("/old_name.py", sample_citation, False)
        result = propagate_diff(function, diff)
        assert result.moved == {"/old_name.py": "/new_name.py"}
