"""Batched persistence and content-addressed citation caching (perf overhaul).

Two families of guarantees:

* ``CitationManager.batch()`` / ``autosave`` defer ``citation.cite`` writes
  but must be observationally equivalent to write-through persistence: the
  final file bytes and the operation log are identical for any operator
  sequence (checked both on a fixed bulk workload and property-style over
  random operator sequences).
* the blob-oid parse cache behind ``cite(path, ref)`` and MergeCite must
  never serve stale resolutions: working-tree mutations (writes, moves,
  merges, raw ``citation.cite`` overwrites) are always visible through the
  documented read paths.
"""

from __future__ import annotations

from contextlib import nullcontext
from datetime import datetime, timezone

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.citation.citefile import CITATION_FILE_PATH, dump_citation_bytes, load_citation_bytes
from repro.citation.conflict import OursStrategy
from repro.citation.function import CitationFunction
from repro.citation.manager import CitationManager
from repro.citation.record import Citation
from repro.errors import CitationError
from repro.vcs.repository import Repository

T0 = datetime(2018, 9, 1, 12, 0, 0, tzinfo=timezone.utc)
T1 = datetime(2018, 9, 1, 13, 0, 0, tzinfo=timezone.utc)

PATHS = ["/src/a.py", "/src/b.py", "/src/util/c.py", "/docs/d.md", "/e.txt", "/src/util/f.py"]


def _citation(tag: str) -> Citation:
    return Citation(
        repo_name="batchdemo",
        owner="alice",
        committed_date=T0,
        commit_id=f"{abs(hash(tag)) % 16**7:07x}",
        url=f"https://example.org/alice/batchdemo#{tag}",
        authors=("alice", tag),
    )


def _build_manager() -> CitationManager:
    repo = Repository.init("batchdemo", "alice")
    for path in PATHS:
        repo.write_file(path, f"content of {path}\n")
    repo.commit("seed", timestamp=T0)
    manager = CitationManager(repo)
    manager.init_citations()
    manager.commit("enable citations", timestamp=T1)
    return manager


def _apply_sequence(manager: CitationManager, operations, batched: bool):
    """Apply an operator sequence; invalid operators are skipped identically."""
    context = manager.batch() if batched else nullcontext()
    with context:
        for kind, path, citation in operations:
            try:
                if kind == "add":
                    manager.add_cite(path, citation)
                elif kind == "modify":
                    manager.modify_cite(path, citation)
                elif kind == "delete":
                    manager.del_cite(path)
                else:
                    manager.gen_cite(path)
            except CitationError:
                continue
    return manager.repo.read_file(CITATION_FILE_PATH), manager.log.summary()


# ---------------------------------------------------------------------------
# batch() equivalence
# ---------------------------------------------------------------------------


class TestBatchEquivalence:
    def test_bulk_adds_batched_matches_unbatched(self):
        operations = [("add", path, _citation(f"op{i}")) for i, path in enumerate(PATHS)]
        plain_bytes, plain_summary = _apply_sequence(_build_manager(), operations, batched=False)
        batch_bytes, batch_summary = _apply_sequence(_build_manager(), operations, batched=True)
        assert batch_bytes == plain_bytes
        assert batch_summary == plain_summary

    def test_batch_defers_the_write_until_exit(self):
        manager = _build_manager()
        before = manager.repo.read_file(CITATION_FILE_PATH)
        with manager.batch():
            manager.add_cite(PATHS[0], _citation("deferred"))
            assert manager.repo.read_file(CITATION_FILE_PATH) == before
        assert manager.repo.read_file(CITATION_FILE_PATH) != before

    def test_batch_flushes_on_error(self):
        manager = _build_manager()
        with pytest.raises(RuntimeError):
            with manager.batch():
                manager.add_cite(PATHS[0], _citation("kept"))
                raise RuntimeError("operator workload failed")
        # The operations that succeeded before the failure are persisted,
        # exactly as write-through persistence would have left them.
        function = load_citation_bytes(manager.repo.read_file(CITATION_FILE_PATH))
        assert function.get_explicit(PATHS[0]) is not None

    def test_commit_inside_batch_snapshots_current_state(self):
        manager = _build_manager()
        with manager.batch():
            manager.add_cite(PATHS[0], _citation("snap"))
            oid = manager.commit("mid-batch commit")
        committed = load_citation_bytes(
            manager.repo.read_file_at(oid, CITATION_FILE_PATH)
        )
        assert committed.get_explicit(PATHS[0]) is not None

    def test_direct_repo_commit_inside_batch_flushes_first(self):
        # Even a commit that bypasses the manager must snapshot the deferred
        # state (the manager registers a pre-commit flush on the repository).
        manager = _build_manager()
        with manager.batch():
            manager.add_cite(PATHS[0], _citation("direct"))
            oid = manager.repo.commit("direct repo commit")
        committed = load_citation_bytes(
            manager.repo.read_file_at(oid, CITATION_FILE_PATH)
        )
        assert committed.get_explicit(PATHS[0]) is not None

    def test_flush_hook_lives_only_while_dirty(self):
        manager = _build_manager()
        repo = manager.repo
        assert manager.flush not in repo._pre_commit_hooks
        with manager.batch():
            manager.add_cite(PATHS[0], _citation("scoped"))
            assert manager.flush in repo._pre_commit_hooks
        # The batch exit flushed; the hook is gone again.
        assert manager.flush not in repo._pre_commit_hooks

    def test_checkout_discards_deferred_state(self):
        # Deferred state describes the pre-checkout worktree; a later commit
        # on the new branch must not be clobbered by a stale flush.
        manager = _build_manager()
        repo = manager.repo
        repo.create_branch("other")
        manager.autosave = False
        manager.add_cite(PATHS[0], _citation("stale"))  # deferred, never flushed
        repo.checkout("other")
        repo.write_file("/other.txt", "x\n")
        oid = repo.commit("other work")
        committed = load_citation_bytes(
            repo.read_file_at(oid, CITATION_FILE_PATH)
        )
        assert committed.get_explicit(PATHS[0]) is None
        assert repo._pre_commit_hooks == []

    def test_raw_merge_discards_deferred_state(self):
        # A non-fast-forward repo.merge replaces the worktree like a
        # checkout does; deferred state must not flush over the merged file.
        manager = _build_manager()
        repo = manager.repo
        repo.create_branch("feature")
        repo.checkout("feature")
        manager.reload()
        manager.add_cite(PATHS[1], _citation("merged-in"))
        manager.commit("feature cite")
        repo.checkout(repo.refs.default_branch)
        manager.reload()
        manager.add_cite(PATHS[2], _citation("mainline"))
        manager.commit("mainline cite")
        feature_bytes = repo.read_file_at("feature", CITATION_FILE_PATH)
        with manager.batch():
            manager.add_cite(PATHS[0], _citation("deferred"))
            # Bypasses merge_cite; replaces the worktree.  The conflicting
            # citation.cite is resolved to the feature branch's bytes.
            repo.merge("feature", resolutions={CITATION_FILE_PATH: feature_bytes})
        function = load_citation_bytes(manager.repo.read_file(CITATION_FILE_PATH))
        assert function.get_explicit(PATHS[1]) is not None  # merged-in survives
        assert function.get_explicit(PATHS[0]) is None  # deferred state discarded

    def test_manual_add_and_commit_without_auto_add_inside_batch(self):
        # Staging flushes deferred state, so commit(auto_add=False) after a
        # manual add() snapshots the batched citation like write-through.
        manager = _build_manager()
        repo = manager.repo
        with manager.batch():
            manager.add_cite(PATHS[0], _citation("manual-add"))
            repo.add()
            oid = repo.commit("manual staging", auto_add=False)
        committed = load_citation_bytes(
            repo.read_file_at(oid, CITATION_FILE_PATH)
        )
        assert committed.get_explicit(PATHS[0]) is not None

    def test_raw_write_during_batch_wins_over_deferred_state(self):
        # Under write-through the raw write would land last; the deferred
        # flush must not clobber it.
        manager = _build_manager()
        repo = manager.repo
        replacement = CitationFunction.with_root(_citation("raw-wins"))
        with manager.batch():
            manager.add_cite(PATHS[0], _citation("deferred"))
            repo.write_file(CITATION_FILE_PATH, dump_citation_bytes(replacement))
        on_disk = load_citation_bytes(repo.read_file(CITATION_FILE_PATH))
        assert on_disk.root_citation() == _citation("raw-wins")
        assert on_disk.get_explicit(PATHS[0]) is None
        # Ops issued *after* the raw write re-apply on top of it.
        manager2 = _build_manager()
        with manager2.batch():
            manager2.add_cite(PATHS[0], _citation("before"))
            manager2.repo.write_file(
                CITATION_FILE_PATH, dump_citation_bytes(replacement)
            )
            manager2.reload()
            manager2.add_cite(PATHS[1], _citation("after"))
        on_disk2 = load_citation_bytes(manager2.repo.read_file(CITATION_FILE_PATH))
        assert on_disk2.root_citation() == _citation("raw-wins")
        assert on_disk2.get_explicit(PATHS[1]) is not None

    def test_autosave_false_defers_until_flush(self):
        manager = _build_manager()
        manager.autosave = False
        before = manager.repo.read_file(CITATION_FILE_PATH)
        manager.add_cite(PATHS[1], _citation("manual"))
        assert manager.repo.read_file(CITATION_FILE_PATH) == before
        manager.flush()
        assert manager.repo.read_file(CITATION_FILE_PATH) != before

    def test_nested_batches_write_once_at_the_outermost_exit(self):
        manager = _build_manager()
        writes: list[str] = []
        original = manager.repo.write_file

        def counting_write(path, data):
            writes.append(path)
            return original(path, data)

        manager.repo.write_file = counting_write
        try:
            with manager.batch():
                manager.add_cite(PATHS[0], _citation("outer"))
                with manager.batch():
                    manager.add_cite(PATHS[1], _citation("inner"))
        finally:
            manager.repo.write_file = original
        assert writes.count(CITATION_FILE_PATH) == 1

    _kinds = st.sampled_from(["add", "modify", "delete", "generate"])
    _ops = st.lists(
        st.tuples(_kinds, st.sampled_from(PATHS), st.integers(0, 99)), max_size=20
    )

    @settings(max_examples=30, deadline=None, suppress_health_check=list(HealthCheck))
    @given(operations=_ops)
    def test_property_any_sequence_is_equivalent(self, operations):
        materialised = [
            (kind, path, _citation(f"c{seed}")) for kind, path, seed in operations
        ]
        plain_bytes, plain_summary = _apply_sequence(
            _build_manager(), materialised, batched=False
        )
        batch_bytes, batch_summary = _apply_sequence(
            _build_manager(), materialised, batched=True
        )
        assert batch_bytes == plain_bytes
        assert batch_summary == plain_summary


# ---------------------------------------------------------------------------
# cache invalidation
# ---------------------------------------------------------------------------


class TestCacheFreshness:
    def test_cite_after_move_file(self):
        manager = _build_manager()
        manager.add_cite(PATHS[0], _citation("moved"))
        manager.move_file(PATHS[0], "/src/renamed.py")
        resolved = manager.cite("/src/renamed.py")
        assert resolved.is_explicit
        assert resolved.citation == _citation("moved")

    def test_cite_after_manager_write_file_to_citation_cite(self):
        manager = _build_manager()
        function = CitationFunction.with_root(_citation("rewritten-root"))
        function.put(PATHS[2], _citation("rewritten"), is_directory=False)
        manager.write_file(CITATION_FILE_PATH, dump_citation_bytes(function))
        # No explicit reload: the manager invalidated its own cache.
        assert manager.cite(PATHS[2]).citation == _citation("rewritten")

    def test_reload_after_raw_repo_write(self):
        manager = _build_manager()
        assert manager.cite(PATHS[2]).inherited
        function = CitationFunction.with_root(_citation("raw-root"))
        function.put(PATHS[2], _citation("raw"), is_directory=False)
        manager.repo.write_file(CITATION_FILE_PATH, dump_citation_bytes(function))
        manager.reload()
        assert manager.cite(PATHS[2]).citation == _citation("raw")

    def test_cite_at_ref_is_pinned_while_worktree_moves_on(self):
        manager = _build_manager()
        manager.add_cite(PATHS[3], _citation("v1"))
        v1 = manager.commit("v1")
        manager.modify_cite(PATHS[3], _citation("v2"))
        manager.commit("v2")
        # Repeated cached reads of the pinned version stay at v1 ...
        for _ in range(3):
            assert manager.cite(PATHS[3], v1).citation == _citation("v1")
        # ... while the working tree resolves to v2.
        assert manager.cite(PATHS[3]).citation == _citation("v2")

    def test_identical_bytes_share_one_parse(self):
        manager = _build_manager()
        v1 = manager.commit("checkpoint", allow_empty=True)
        manager.repo.write_file("/unrelated.txt", "no citation change\n")
        v2 = manager.commit("unrelated edit")
        # citation.cite is byte-identical in both versions, so the cache
        # hands back the very same parsed function object.
        assert manager._function_at(v1) is manager._function_at(v2)

    def test_copy_cite_degrades_on_malformed_source_citation_file(self):
        source = Repository.init("lib", "bob")
        source.write_file("/pkg/a.py", "y\n")
        source.write_file(CITATION_FILE_PATH, b"{ not json")
        source.commit("malformed citation file")
        manager = _build_manager()
        outcome = manager.copy_cite(source, "/pkg", "/vendor")
        # Files copied; no citation migration from the unparseable source.
        assert outcome.copied_files == ("/vendor/a.py",)
        assert outcome.citation_result.migrated == {}
        assert manager.repo.file_exists("/vendor/a.py")

    def test_clean_cache_refreshes_after_checkout(self):
        # A write-through (never dirty) manager must not serve the previous
        # branch's citations after a checkout, even without reload().
        manager = _build_manager()
        repo = manager.repo
        manager.add_cite(PATHS[0], _citation("v1"))
        manager.commit("v1")
        repo.create_branch("other")
        repo.checkout("other")
        manager.modify_cite(PATHS[0], _citation("v2"))
        manager.commit("v2")
        repo.checkout(repo.refs.default_branch)
        assert manager.cite(PATHS[0]).citation == _citation("v1")

    def test_cite_after_merge_cite(self):
        manager = _build_manager()
        repo = manager.repo
        repo.create_branch("feature")
        repo.checkout("feature")
        manager.reload()
        manager.add_cite(PATHS[4], _citation("feature"))
        manager.commit("feature citation")
        repo.checkout(repo.refs.default_branch)
        manager.reload()
        manager.add_cite(PATHS[5], _citation("mainline"))
        manager.commit("mainline citation")
        manager.merge_cite("feature", strategy=OursStrategy())
        assert manager.cite(PATHS[4]).citation == _citation("feature")
        assert manager.cite(PATHS[5]).citation == _citation("mainline")
