"""Write-ahead journal, serve recovery and lifecycle guarantees (PR 8).

Covers the durability layer in isolation (journal framing, torn tails,
silent corruption, durable vs write-behind fsync cadence), the recovery
pipeline end to end (push → no save → recover → bytes identical, double
restart idempotence, damaged records degrade instead of fabricating
history), the lifecycle guard (drain, overload shed, degraded read-only,
``/healthz`` probe recovery, deadline accounting) and the HTTP hardening
satellites (oversized bodies, stalled/vanished clients, response caps,
connect-vs-read timeout classification).
"""

from __future__ import annotations

import base64
import socket
import threading
import time
from pathlib import Path

import pytest

from repro import faults
from repro.cli.storage import load_repository, save_repository
from repro.errors import RemoteError, TransportError
from repro.faults import SimulatedCrash
from repro.hub.api import ApiResponse, RestApi
from repro.hub.durability import (
    PushJournal,
    journal_path,
    recover_working_copy,
    replay_journal,
)
from repro.hub.httpd import HubHttpServer, HttpTransport
from repro.hub.lifecycle import GuardedApi, ServingState, drain
from repro.hub.server import HostingPlatform
from repro.hub.sync import HubRemote
from repro.vcs.fsck import fsck_working_copy
from repro.vcs.repository import Repository
from repro.vcs.transfer import advertise_refs, create_bundle


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.reset()
    yield
    faults.reset()


def _build_served_root(tmp_path: Path) -> Path:
    root = tmp_path / "served"
    repo = Repository.init(name="proj", owner="alice")
    repo.write_file("README.md", "served\n")
    repo.commit("init")
    save_repository(repo, root)
    return root


def _hosted_platform(root: Path, attach_journal: bool = True):
    """(platform, api, token, journal) serving the working copy at ``root``."""
    repo = load_repository(root)
    platform = HostingPlatform()
    platform.host_repository(repo)
    token = platform.issue_token("alice").value
    journal = None
    if attach_journal:
        journal = PushJournal(journal_path(root))
        platform.attach_journal("alice/proj", journal)
    return platform, RestApi(platform), token, journal


# ---------------------------------------------------------------------------
# The journal itself
# ---------------------------------------------------------------------------


class TestPushJournal:
    def test_round_trip_preserves_order_and_force_flags(self, tmp_path):
        path = tmp_path / "j" / "pushes.waj"
        with PushJournal(path) as journal:
            journal.append(b"bundle-one")
            journal.append(b"bundle-two", force=True)
            journal.append(b"bundle-three")
        replay = replay_journal(path)
        assert [record.bundle for record in replay.records] == [
            b"bundle-one", b"bundle-two", b"bundle-three",
        ]
        assert [record.force for record in replay.records] == [False, True, False]
        assert not replay.torn_tail and not replay.corrupt_record

    def test_torn_tail_replays_the_intact_prefix(self, tmp_path):
        path = tmp_path / "pushes.waj"
        with PushJournal(path) as journal:
            journal.append(b"intact")
            journal.append(b"this one is torn by the crash")
        data = path.read_bytes()
        path.write_bytes(data[:-7])  # tear the last record mid-payload
        replay = replay_journal(path)
        assert [record.bundle for record in replay.records] == [b"intact"]
        assert replay.torn_tail and not replay.corrupt_record

    def test_flipped_byte_stops_replay_at_the_damage(self, tmp_path):
        path = tmp_path / "pushes.waj"
        with PushJournal(path) as journal:
            journal.append(b"first")
            journal.append(b"second")
            journal.append(b"third")
        data = bytearray(path.read_bytes())
        data[-3] ^= 0xFF  # silently corrupt the last record's payload
        path.write_bytes(bytes(data))
        replay = replay_journal(path)
        assert [record.bundle for record in replay.records] == [b"first", b"second"]
        assert replay.corrupt_record and not replay.torn_tail

    def test_durable_mode_fsyncs_every_append(self, tmp_path):
        journal = PushJournal(tmp_path / "pushes.waj", durable=True)
        baseline = journal.syncs
        journal.append(b"a")
        journal.append(b"b")
        assert journal.syncs == baseline + 2
        journal.close()

    def test_write_behind_batches_fsyncs(self, tmp_path):
        journal = PushJournal(tmp_path / "pushes.waj", durable=False, flush_every=3)
        baseline = journal.syncs
        journal.append(b"a")
        journal.append(b"b")
        assert journal.syncs == baseline  # buffered
        journal.append(b"c")
        assert journal.syncs == baseline + 1  # batch boundary
        journal.close()  # close flushes the tail

    def test_append_failpoint_truncate_leaves_a_torn_frame(self, tmp_path):
        path = tmp_path / "pushes.waj"
        journal = PushJournal(path)
        journal.append(b"durable")
        # at=2: the hit counter is per-name and append #1 already consumed hit 1.
        with faults.armed("journal.append", "truncate", keep=5, at=2):
            with pytest.raises(SimulatedCrash):
                journal.append(b"torn away")
        replay = replay_journal(path)
        assert [record.bundle for record in replay.records] == [b"durable"]
        assert replay.torn_tail

    def test_append_failpoint_flip_is_caught_by_the_checksum(self, tmp_path):
        path = tmp_path / "pushes.waj"
        journal = PushJournal(path)
        journal.append(b"good")
        with faults.armed("journal.append", "flip", offset=2, at=2):
            journal.append(b"silently damaged")
        journal.close()
        replay = replay_journal(path)
        assert [record.bundle for record in replay.records] == [b"good"]
        assert replay.corrupt_record

    def test_truncate_resets_to_an_empty_journal(self, tmp_path):
        path = tmp_path / "pushes.waj"
        journal = PushJournal(path)
        journal.append(b"checkpointed")
        journal.truncate()
        journal.append(b"fresh era")
        journal.close()
        replay = replay_journal(path)
        assert [record.bundle for record in replay.records] == [b"fresh era"]

    def test_verify_writable_probes_the_disk(self, tmp_path):
        journal = PushJournal(tmp_path / "pushes.waj")
        assert journal.verify_writable() is True
        journal._handle.close()  # simulate the disk going away
        assert journal.verify_writable() is False

    def test_missing_journal_replays_empty(self, tmp_path):
        replay = replay_journal(tmp_path / "never-created.waj")
        assert replay.records == [] and not replay.torn_tail


# ---------------------------------------------------------------------------
# Recovery end to end
# ---------------------------------------------------------------------------


class TestRecovery:
    def test_acknowledged_push_survives_without_a_save(self, tmp_path):
        root = _build_served_root(tmp_path)
        platform, api, token, journal = _hosted_platform(root)
        remote = HubRemote(api, "alice/proj", token=token)
        clone = remote.clone()
        clone.write_file("pushed.txt", "must survive\n")
        clone.commit("add pushed.txt")
        result = remote.push(clone)
        assert result["updated"]
        journal.close()  # the process dies here: no save_repository

        recovered, report = recover_working_copy(root)
        assert report.clean and report.records_replayed == 1
        assert recovered.read_file_at("main", "pushed.txt") == b"must survive\n"
        assert recovered.refs.branch_target("main") == result["updated"]["main"]
        # A clean recovery checkpointed and reset the journal.
        assert replay_journal(journal_path(root)).records == []

    def test_contents_commit_is_journalled_as_a_bundle(self, tmp_path):
        root = _build_served_root(tmp_path)
        platform, api, token, journal = _hosted_platform(root)
        response = api.put(
            "/repos/alice/proj/contents/cite.txt",
            {"message": "cite", "content": base64.b64encode(b"c1\n").decode()},
            token=token,
        )
        assert response.status == 201
        journal.close()

        recovered, report = recover_working_copy(root)
        assert report.clean and report.records_replayed == 1
        assert recovered.read_file_at("main", "cite.txt") == b"c1\n"

    def test_double_restart_is_idempotent(self, tmp_path):
        root = _build_served_root(tmp_path)
        platform, api, token, journal = _hosted_platform(root)
        remote = HubRemote(api, "alice/proj", token=token)
        clone = remote.clone()
        clone.write_file("a.txt", "a\n")
        clone.commit("a")
        remote.push(clone)
        journal.close()

        # First recovery without checkpointing leaves the journal in place;
        # the second replays the same records onto the already-updated state.
        first, report_one = recover_working_copy(root, checkpoint=False)
        second, report_two = recover_working_copy(root, checkpoint=False)
        assert report_one.records_replayed == report_two.records_replayed == 1
        assert first.refs.branch_target("main") == second.refs.branch_target("main")
        assert second.read_file_at("main", "a.txt") == b"a\n"

    def test_unreplayable_record_degrades_and_keeps_the_journal(self, tmp_path):
        root = _build_served_root(tmp_path)
        with PushJournal(journal_path(root)) as journal:
            journal.append(b"this is not a bundle at all")
        recovered, report = recover_working_copy(root)
        assert report.degraded and report.failed_records == 1
        assert "failed to re-apply" in report.degraded_reason
        # The journal is evidence now — recovery must not truncate it.
        assert len(replay_journal(journal_path(root)).records) == 1
        # The intact checkpoint still loads and serves.
        assert recovered.read_file_at("main", "README.md") == b"served\n"

    def test_recover_failpoint_crash_then_restart_converges(self, tmp_path):
        root = _build_served_root(tmp_path)
        platform, api, token, journal = _hosted_platform(root)
        remote = HubRemote(api, "alice/proj", token=token)
        clone = remote.clone()
        clone.write_file("b.txt", "b\n")
        clone.commit("b")
        remote.push(clone)
        journal.close()

        with faults.armed("serve.recover", "crash"):
            with pytest.raises(SimulatedCrash):
                recover_working_copy(root)
        # The crash hit mid-recovery; a plain restart replays everything.
        recovered, report = recover_working_copy(root)
        assert report.clean and report.records_replayed == 1
        assert recovered.read_file_at("main", "b.txt") == b"b\n"
        assert fsck_working_copy(root, repair=False).ok

    def test_journal_append_oserror_becomes_retryable_503(self, tmp_path):
        root = _build_served_root(tmp_path)
        platform, api, token, journal = _hosted_platform(root)
        state = ServingState()
        platform.bind_lifecycle(state)
        remote = HubRemote(api, "alice/proj", token=token)
        clone = remote.clone()
        clone.write_file("c.txt", "c\n")
        clone.commit("c")
        with faults.armed(
            "journal.append", "error", error=lambda: OSError("disk gone")
        ):
            with pytest.raises(RemoteError, match="degraded"):
                remote.push(clone)
        # The failed append degraded the hub: writes shed until it heals.
        assert state.degraded is not None and "journal" in state.degraded
        # The disk healed: re-sending the identical receive-pack (what the
        # retrying transport does) is acknowledged AND journalled, even
        # though the refs already moved on the first, unacknowledged try.
        bundle = create_bundle(
            clone.store,
            [clone.refs.branch_target("main")],
            refs=advertise_refs(clone),
        )
        response = api.post(
            "/repos/alice/proj/git/receive-pack",
            {"bundle": base64.b64encode(bundle).decode()},
            token=token,
        )
        assert response.ok
        journal.close()
        assert len(replay_journal(journal_path(root)).records) == 1


# ---------------------------------------------------------------------------
# Lifecycle: drain, shed, degraded, health
# ---------------------------------------------------------------------------


class _StubApi:
    """A RestApi stand-in with scripted responses."""

    def __init__(self, response: ApiResponse | None = None):
        self.response = response if response is not None else ApiResponse(status=200, json={})
        self.calls = 0

    def request(self, method, url, token=None, payload=None):
        self.calls += 1
        return self.response


class TestLifecycle:
    def test_draining_sheds_everything_with_retryable_503(self):
        state = ServingState()
        guard = GuardedApi(_StubApi(), state)
        state.start_draining()
        response = guard.get("/repos/alice/proj/git/refs")
        assert response.status == 503
        assert response.json["retryable"] is True and "retry_after" in response.json
        assert guard.api.calls == 0
        assert state.snapshot()["shed"]["draining"] == 1

    def test_degraded_sheds_writes_but_serves_reads(self):
        state = ServingState()
        inner = _StubApi()
        guard = GuardedApi(inner, state)
        state.mark_degraded("disk failure")
        push = guard.post("/repos/alice/proj/git/receive-pack", {"bundle": "x"})
        assert push.status == 503 and push.json["retryable"] is True
        read = guard.get("/repos/alice/proj/git/refs")
        assert read.status == 200
        # upload-pack is a POST but only reads — it must pass through too.
        fetch = guard.post("/repos/alice/proj/git/upload-pack", {"wants": ["main"]})
        assert fetch.status == 200
        assert inner.calls == 2

    def test_overload_shed_with_retry_after(self):
        state = ServingState(max_in_flight=1)
        guard = GuardedApi(_StubApi(), state)
        assert state.try_enter()  # occupy the only slot
        response = guard.get("/user")
        assert response.status == 503 and response.json["retryable"] is True
        assert response.json["retry_after"] > 0
        state.leave()
        assert guard.get("/user").status == 200

    def test_healthz_reports_and_probes_recovery(self):
        state = ServingState()
        healed = {"value": False}
        guard = GuardedApi(_StubApi(), state, probe=lambda: healed["value"])
        assert guard.get("/healthz").status == 200
        state.mark_degraded("disk failure", recoverable=True)
        assert guard.get("/healthz").status == 503  # probe says still broken
        healed["value"] = True
        response = guard.get("/healthz")
        assert response.status == 200 and state.degraded is None

    def test_unrecoverable_degradation_ignores_the_probe(self):
        state = ServingState()
        guard = GuardedApi(_StubApi(), state, probe=lambda: True)
        state.mark_degraded("quarantined history", recoverable=False)
        assert guard.get("/healthz").status == 503
        assert state.degraded is not None

    def test_deadline_overrun_converts_late_failures_only(self):
        clock = {"now": 0.0}
        state = ServingState(request_deadline=1.0)

        class SlowApi(_StubApi):
            def request(self, method, url, token=None, payload=None):
                clock["now"] += 5.0  # every request blows the deadline
                return super().request(method, url, token=token, payload=payload)

        slow_failure = SlowApi(ApiResponse(status=404, json={"message": "gone"}))
        guard = GuardedApi(slow_failure, state, clock=lambda: clock["now"])
        assert guard.get("/user").status == 503  # late failure → retryable
        slow_success = SlowApi(ApiResponse(status=200, json={"ok": True}))
        guard = GuardedApi(slow_success, state, clock=lambda: clock["now"])
        assert guard.get("/user").status == 200  # late success is still the ack
        assert state.snapshot()["deadline_overruns"] == 2

    def test_drain_waits_for_in_flight_work(self):
        state = ServingState()
        inner = _StubApi()
        guard = GuardedApi(inner, state)
        release = threading.Event()

        class BlockingApi(_StubApi):
            def request(self, method, url, token=None, payload=None):
                release.wait(5.0)
                return super().request(method, url, token=token, payload=payload)

        guard = GuardedApi(BlockingApi(), state)
        worker = threading.Thread(target=lambda: guard.get("/user"), daemon=True)
        worker.start()
        deadline = time.monotonic() + 5.0
        while state.in_flight == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert not drain(state, timeout=0.1)  # still blocked inside
        release.set()
        worker.join(timeout=5.0)
        assert state.wait_idle(5.0)


# ---------------------------------------------------------------------------
# HTTP hardening: body caps, vanishing clients, transport limits
# ---------------------------------------------------------------------------


class TestHttpHardening:
    def test_oversized_body_is_rejected_as_non_retryable_422(self, tmp_path):
        root = _build_served_root(tmp_path)
        platform, api, token, _ = _hosted_platform(root, attach_journal=False)
        with HubHttpServer(api, max_body_bytes=1024) as server:
            wire = HttpTransport(server.url, timeout=10)
            response = wire.post(
                "/repos/alice/proj/git/receive-pack",
                {"bundle": "A" * 4096},
                token=token,
            )
            assert response.status == 422
            assert response.json["retryable"] is False
            assert "limit" in response.json["message"]

    def test_client_disconnect_mid_request_does_not_kill_the_server(self, tmp_path):
        root = _build_served_root(tmp_path)
        platform, api, token, _ = _hosted_platform(root, attach_journal=False)
        with HubHttpServer(api) as server:
            raw = socket.create_connection((server.host, server.port))
            raw.sendall(b"POST /repos/alice/proj/git/receive-pack HTTP/1.1\r\n"
                        b"Content-Length: 500000\r\n\r\npartial")
            raw.close()  # vanish mid-body
            wire = HttpTransport(server.url, timeout=10)
            assert wire.get("/repos/alice/proj/git/refs").status == 200

    def test_stalled_client_cannot_pin_a_handler_thread(self, tmp_path):
        root = _build_served_root(tmp_path)
        platform, api, token, _ = _hosted_platform(root, attach_journal=False)
        with HubHttpServer(api, request_timeout=0.3) as server:
            stalled = socket.create_connection((server.host, server.port))
            stalled.sendall(b"POST /repos/alice/proj/git/receive-pack HTTP/1.1\r\n"
                            b"Content-Length: 1000\r\n\r\n")  # …and never the body
            time.sleep(0.6)  # past the socket timeout: the handler gave up
            wire = HttpTransport(server.url, timeout=10)
            assert wire.get("/repos/alice/proj/git/refs").status == 200
            stalled.close()

    def test_transport_caps_hostile_response_bodies(self, tmp_path):
        root = _build_served_root(tmp_path)
        platform, api, token, _ = _hosted_platform(root, attach_journal=False)
        with HubHttpServer(api) as server:
            wire = HttpTransport(server.url, timeout=10, max_response_bytes=64)
            with pytest.raises(TransportError, match="client limit"):
                wire.get("/repos/alice/proj/git/refs")

    def test_connect_failure_is_labelled_as_connect(self):
        sink = socket.socket()
        sink.bind(("127.0.0.1", 0))
        port = sink.getsockname()[1]
        sink.close()  # nothing listens here any more
        wire = HttpTransport("127.0.0.1", port=port, timeout=5, connect_timeout=0.5)
        with pytest.raises(TransportError, match="connect"):
            wire.get("/anything")

    def test_read_timeout_is_labelled_as_after_connect(self):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        try:
            port = listener.getsockname()[1]
            # The backlog accepts the TCP handshake but nothing ever answers.
            wire = HttpTransport("127.0.0.1", port=port, timeout=0.3)
            with pytest.raises(TransportError, match="after connect"):
                wire.get("/anything")
        finally:
            listener.close()

    def test_degraded_hub_over_http_serves_reads_rejects_pushes(self, tmp_path):
        root = _build_served_root(tmp_path)
        platform, api, token, journal = _hosted_platform(root)
        state = ServingState()
        platform.bind_lifecycle(state)
        state.mark_degraded("quarantined history", recoverable=False)
        guard = GuardedApi(api, state, probe=journal.verify_writable)
        with HubHttpServer(guard) as server:
            wire = HttpTransport(server.url, timeout=10)
            assert wire.get("/repos/alice/proj/git/refs").status == 200
            remote = HubRemote(wire, "alice/proj", token=token)
            clone = remote.clone()  # reads (refs + upload-pack) still work
            assert clone.read_file_at("main", "README.md") == b"served\n"
            clone.write_file("nope.txt", "rejected\n")
            clone.commit("nope")
            bundle_response = wire.post(
                "/repos/alice/proj/git/receive-pack",
                {"bundle": base64.b64encode(b"ignored").decode()},
                token=token,
            )
            assert bundle_response.status == 503
            assert bundle_response.json["retryable"] is True
            health = wire.get("/healthz")
            assert health.status == 503 and health.json["status"] == "degraded"
        journal.close()
