"""Unit tests for citation functions and closest-ancestor resolution (Section 2)."""

import pytest

from repro.errors import CitationExistsError, CitationNotFoundError, ConsistencyError
from repro.citation.function import CitationEntry, CitationFunction


@pytest.fixture
def function(sample_citation, other_citation) -> CitationFunction:
    """Root cited with the sample citation, /green cited with the other one."""
    function = CitationFunction.with_root(sample_citation)
    function.put("/green", other_citation, is_directory=True)
    return function


class TestActiveDomain:
    def test_with_root_creates_total_function(self, sample_citation):
        function = CitationFunction.with_root(sample_citation)
        assert function.has_root
        assert function.active_domain() == ["/"]
        assert function.root_citation() == sample_citation

    def test_attach_and_membership(self, function, sample_citation):
        function.attach("/f1.py", sample_citation, is_directory=False)
        assert "/f1.py" in function
        assert function.get_explicit("/f1.py") == sample_citation
        assert len(function) == 3

    def test_attach_existing_path_raises(self, function, sample_citation):
        with pytest.raises(CitationExistsError):
            function.attach("/green", sample_citation, is_directory=True)

    def test_replace_missing_path_raises(self, function, sample_citation):
        with pytest.raises(CitationNotFoundError):
            function.replace("/missing.py", sample_citation)

    def test_detach_and_root_protection(self, function):
        function.detach("/green")
        assert "/green" not in function
        with pytest.raises(CitationNotFoundError):
            function.detach("/green")
        with pytest.raises(ConsistencyError):
            function.detach("/")

    def test_root_entry_must_be_directory(self, sample_citation):
        with pytest.raises(ConsistencyError):
            CitationEntry(path="/", citation=sample_citation, is_directory=False)

    def test_entries_under(self, function, sample_citation):
        function.put("/green/deep/file.py", sample_citation, False)
        under = [entry.path for entry in function.entries_under("/green")]
        assert under == ["/green", "/green/deep/file.py"]
        without_prefix = [e.path for e in function.entries_under("/green", include_prefix=False)]
        assert without_prefix == ["/green/deep/file.py"]

    def test_copy_is_independent(self, function, sample_citation):
        duplicate = function.copy()
        duplicate.put("/new.py", sample_citation, False)
        assert "/new.py" not in function
        assert duplicate != function

    def test_equality(self, sample_citation):
        assert CitationFunction.with_root(sample_citation) == CitationFunction.with_root(sample_citation)


class TestResolution:
    def test_explicit_citation_wins(self, function, other_citation):
        resolved = function.resolve("/green")
        assert resolved.citation == other_citation
        assert resolved.is_explicit and not resolved.inherited
        assert resolved.source_path == "/green"

    def test_closest_ancestor_inheritance(self, function, other_citation):
        resolved = function.resolve("/green/f2.py")
        assert resolved.citation == other_citation
        assert resolved.inherited
        assert resolved.source_path == "/green"

    def test_falls_back_to_root(self, function, sample_citation):
        resolved = function.resolve("/unrelated/deep/file.py")
        assert resolved.citation == sample_citation
        assert resolved.source_path == "/"

    def test_closest_beats_farther_ancestor(self, function, sample_citation, other_citation):
        nested = sample_citation.with_changes(title="nested dir")
        function.put("/green/inner", nested, is_directory=True)
        assert function.resolve("/green/inner/x.py").citation == nested
        assert function.resolve("/green/other.py").citation == other_citation

    def test_resolution_total_for_every_node(self, function):
        for path in ("/", "/a", "/a/b/c/d/e", "/green", "/green/x/y"):
            assert function.resolve(path) is not None

    def test_missing_root_is_undefined(self, sample_citation):
        function = CitationFunction()
        function.put("/dir", sample_citation, is_directory=True)
        with pytest.raises(ConsistencyError):
            function.resolve("/other.py")

    def test_resolve_chain_lists_all_ancestor_citations(self, function, sample_citation, other_citation):
        chain = function.resolve_chain("/green/f2.py")
        assert [r.source_path for r in chain] == ["/green", "/"]
        assert chain[0].citation == other_citation
        assert chain[-1].citation == sample_citation
        assert chain[0].citation == function.resolve("/green/f2.py").citation


class TestStructuralUpdates:
    def test_rename_single_entry(self, function, other_citation):
        assert function.rename("/green", "/blue")
        assert function.get_explicit("/blue") == other_citation
        assert "/green" not in function
        assert not function.rename("/missing", "/elsewhere")

    def test_rename_prefix_moves_subtree_entries(self, function, sample_citation):
        function.put("/green/f2.py", sample_citation, False)
        moves = function.rename_prefix("/green", "/imported/green")
        assert moves == {"/green": "/imported/green", "/green/f2.py": "/imported/green/f2.py"}
        assert function.resolve("/imported/green/f2.py").is_explicit

    def test_drop_missing_removes_orphans_but_keeps_root(self, function, sample_citation):
        function.put("/gone.py", sample_citation, False)
        dropped = function.drop_missing({"/green"})
        assert dropped == ["/gone.py"]
        assert function.has_root and "/green" in function

    def test_put_preserves_existing_directory_flag(self, function, sample_citation):
        function.put("/green", sample_citation, is_directory=False)
        assert function.entry("/green").is_directory  # original flag kept

    def test_to_entries_from_entries_round_trip(self, function):
        rebuilt = CitationFunction.from_entries(function.to_entries())
        assert rebuilt == function
        assert [e.path for e in rebuilt] == sorted(rebuilt.active_domain())
