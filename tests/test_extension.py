"""Tests for the browser-extension simulator: client operations and the Figure 2 popup."""

import pytest

from repro.errors import CitationError, CitationFileError, NotFoundError, PermissionDeniedError
from repro.extension.client import ExtensionClient
from repro.extension.popup import PopupSession
from repro.hub.api import RestApi
from repro.hub.server import HostingPlatform


@pytest.fixture
def hosted(enabled_manager, sample_citation):
    """The demo repository hosted on a platform, with a member and a non-member."""
    manager = enabled_manager
    manager.add_cite("/src/main.py", sample_citation)
    manager.commit("cite main module")
    platform = HostingPlatform()
    platform.register_user("alice", name="Alice Smith")
    platform.register_user("visitor", name="Just Visiting")
    platform.host_repository(manager.repo)
    return {
        "platform": platform,
        "api": RestApi(platform),
        "slug": "alice/demo",
        "member": platform.issue_token("alice").value,
        "visitor": platform.issue_token("visitor").value,
    }


class TestExtensionClient:
    def test_sign_in(self, hosted):
        client = ExtensionClient(hosted["api"])
        assert client.sign_in(hosted["member"]) == "alice"
        assert client.current_login() == "alice"
        client.sign_out()
        assert client.current_login() is None

    def test_sign_in_with_bad_token_fails(self, hosted):
        client = ExtensionClient(hosted["api"])
        with pytest.raises(PermissionDeniedError):
            client.sign_in("ghs_wrong")

    def test_membership_detection(self, hosted):
        member = ExtensionClient(hosted["api"], token=hosted["member"])
        visitor = ExtensionClient(hosted["api"], token=hosted["visitor"])
        anonymous = ExtensionClient(hosted["api"])
        assert member.is_member(hosted["slug"])
        assert not visitor.is_member(hosted["slug"])
        assert not anonymous.is_member(hosted["slug"])

    def test_generate_citation_for_any_reader(self, hosted, sample_citation):
        visitor = ExtensionClient(hosted["api"], token=hosted["visitor"])
        resolved = visitor.generate_citation(hosted["slug"], "/src/main.py")
        assert resolved.citation == sample_citation
        inherited = visitor.generate_citation(hosted["slug"], "/docs/guide.md")
        assert inherited.source_path == "/" and inherited.inherited

    def test_view_node_carries_membership_and_explicit_entry(self, hosted, sample_citation):
        member = ExtensionClient(hosted["api"], token=hosted["member"])
        view = member.view_node(hosted["slug"], "/src/main.py")
        assert view.is_member and view.explicit_citation == sample_citation
        assert "Data_citation_demo" in view.generated_text

    def test_uncited_repository_reported(self, hosted):
        from repro.vcs.repository import Repository

        platform = hosted["platform"]
        plain = Repository.init("plain", "alice")
        plain.write_file("code.py", "x = 1\n")
        plain.commit("no citations here")
        platform.host_repository(plain)
        client = ExtensionClient(hosted["api"], token=hosted["member"])
        with pytest.raises(CitationFileError):
            client.citation_function("alice/plain")

    def test_member_add_modify_delete_round_trip(self, hosted, other_citation):
        member = ExtensionClient(hosted["api"], token=hosted["member"])
        slug = hosted["slug"]
        member.add_citation(slug, "/docs/guide.md", other_citation)
        assert member.view_node(slug, "/docs/guide.md").explicit_citation == other_citation
        member.modify_citation(slug, "/docs/guide.md", other_citation.with_changes(title="updated"))
        assert member.view_node(slug, "/docs/guide.md").explicit_citation.title == "updated"
        member.delete_citation(slug, "/docs/guide.md")
        assert member.view_node(slug, "/docs/guide.md").explicit_citation is None

    def test_non_member_cannot_mutate(self, hosted, other_citation):
        visitor = ExtensionClient(hosted["api"], token=hosted["visitor"])
        with pytest.raises(PermissionDeniedError):
            visitor.add_citation(hosted["slug"], "/docs/guide.md", other_citation)
        with pytest.raises(PermissionDeniedError):
            visitor.delete_citation(hosted["slug"], "/src/main.py")

    def test_remote_mutation_creates_a_commit(self, hosted, other_citation):
        platform = hosted["platform"]
        before = platform.get_repository(hosted["slug"]).repo.head_oid()
        member = ExtensionClient(hosted["api"], token=hosted["member"])
        commit = member.add_citation(hosted["slug"], "/README.md", other_citation)
        after = platform.get_repository(hosted["slug"]).repo.head_oid()
        assert commit == after != before

    def test_unknown_repository(self, hosted):
        client = ExtensionClient(hosted["api"], token=hosted["member"])
        with pytest.raises(NotFoundError):
            client.repository_info("alice/ghost")


class TestPopupSession:
    def test_non_member_sees_generated_citation_and_disabled_buttons(self, hosted):
        """Figure 2, non-member behaviour (Section 3)."""
        client = ExtensionClient(hosted["api"])
        popup = PopupSession(client)
        popup.sign_in(hosted["visitor"])
        popup.open_repository(hosted["slug"])
        view = popup.select_node("/src/main.py")
        assert not view.is_member
        assert view.text_box == view.generated_text != ""
        assert not view.add_enabled and not view.delete_enabled and not view.modify_enabled
        assert view.generate_enabled
        assert any("not a member" in line for line in view.as_lines())

    def test_member_with_explicit_citation_can_modify_and_delete(self, hosted):
        client = ExtensionClient(hosted["api"])
        popup = PopupSession(client)
        popup.sign_in(hosted["member"])
        popup.open_repository(hosted["slug"])
        view = popup.select_node("/src/main.py")
        assert view.is_member and view.text_box  # explicit citation shown as editable JSON
        assert view.modify_enabled and view.delete_enabled and not view.add_enabled

    def test_member_without_explicit_citation_gets_empty_box_then_generate(self, hosted):
        client = ExtensionClient(hosted["api"])
        popup = PopupSession(client)
        popup.sign_in(hosted["member"])
        popup.open_repository(hosted["slug"])
        view = popup.select_node("/docs/guide.md")
        assert view.is_member and view.text_box == ""
        assert view.add_enabled and not view.delete_enabled
        generated = popup.press_generate()
        assert "repoName" in generated
        popup.press_add()
        refreshed = popup.select_node("/docs/guide.md")
        assert refreshed.text_box != "" and refreshed.delete_enabled

    def test_full_member_workflow_add_modify_delete(self, hosted, other_citation):
        client = ExtensionClient(hosted["api"])
        popup = PopupSession(client)
        popup.sign_in(hosted["member"])
        popup.open_repository(hosted["slug"])
        popup.select_node("/README.md")
        popup.edit_text_box(other_citation)
        popup.press_add()
        popup.select_node("/README.md")
        popup.edit_text_box(other_citation.with_changes(title="better title"))
        popup.press_modify()
        view = popup.select_node("/README.md")
        assert '"title": "better title"' in view.text_box
        popup.press_delete()
        assert popup.select_node("/README.md").text_box == ""

    def test_cannot_act_without_selecting_a_node(self, hosted):
        popup = PopupSession(ExtensionClient(hosted["api"], token=hosted["member"]))
        with pytest.raises(CitationError):
            popup.select_node("/x.py")  # no repository opened yet
        popup.open_repository(hosted["slug"])
        with pytest.raises(CitationError):
            popup.press_generate()

    def test_add_with_empty_box_rejected(self, hosted):
        popup = PopupSession(ExtensionClient(hosted["api"], token=hosted["member"]))
        popup.sign_in(hosted["member"])
        popup.open_repository(hosted["slug"])
        popup.select_node("/docs/guide.md")
        with pytest.raises(CitationError):
            popup.press_add()
