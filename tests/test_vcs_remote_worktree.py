"""Unit tests for clone/fork/push/pull, ignore rules and on-disk worktrees."""

import pytest

from repro.errors import RemoteError, VCSError
from repro.vcs.ignore import IgnoreRules
from repro.vcs.remote import clone_repository, fetch_branch, fork_repository, pull, push, reachable_objects
from repro.vcs.repository import Repository
from repro.vcs.worktree import export_snapshot, export_worktree, import_worktree


@pytest.fixture
def origin() -> Repository:
    repo = Repository.init("upstream", "alice", description="origin project")
    repo.write_file("src/lib.py", "lib = 1\n")
    repo.write_file("README.md", "# upstream\n")
    repo.commit("initial")
    return repo


class TestCloneAndFork:
    def test_clone_preserves_history_and_content(self, origin):
        clone = clone_repository(origin)
        assert clone.head_oid() == origin.head_oid()
        assert clone.snapshot() == origin.snapshot()
        assert clone.full_name == origin.full_name

    def test_clone_is_independent(self, origin):
        clone = clone_repository(origin)
        clone.write_file("new.txt", "n")
        clone.commit("clone-only work")
        assert origin.head_oid() != clone.head_oid()
        assert not origin.file_exists("new.txt")

    def test_fork_changes_owner_keeps_history(self, origin):
        fork = fork_repository(origin, new_owner="bob", new_name="downstream")
        assert fork.owner == "bob" and fork.name == "downstream"
        assert fork.head_oid() == origin.head_oid()
        assert fork.snapshot() == origin.snapshot()

    def test_fork_requires_owner(self, origin):
        with pytest.raises(RemoteError):
            fork_repository(origin, new_owner="")

    def test_reachable_objects_cover_commit_trees_blobs(self, origin):
        objects = reachable_objects(origin.store, origin.head_oid())
        assert origin.head_oid() in objects
        assert len(objects) >= 4  # commit + root tree + subtree + 2 blobs


class TestPushPull:
    def test_push_fast_forward(self, origin):
        local = clone_repository(origin)
        local.write_file("feature.py", "x = 1\n")
        tip = local.commit("feature")
        assert push(local, origin) == tip
        assert origin.head_oid() == tip
        assert origin.file_exists("feature.py")

    def test_push_rejects_non_fast_forward(self, origin):
        local = clone_repository(origin)
        local.write_file("a.txt", "a")
        local.commit("local work")
        origin.write_file("b.txt", "b")
        origin.commit("remote work")
        with pytest.raises(RemoteError):
            push(local, origin)
        push(local, origin, force=True)
        assert origin.head_oid() == local.head_oid()

    def test_push_unknown_branch(self, origin):
        local = clone_repository(origin)
        with pytest.raises(RemoteError):
            push(local, origin, branch="does-not-exist")

    def test_pull_fast_forwards_local(self, origin):
        local = clone_repository(origin)
        origin.write_file("upstream.txt", "u")
        tip = origin.commit("upstream change")
        assert pull(local, origin) == tip
        assert local.head_oid() == tip and local.file_exists("upstream.txt")

    def test_pull_diverged_refuses(self, origin):
        local = clone_repository(origin)
        local.write_file("l.txt", "l")
        local.commit("local")
        origin.write_file("r.txt", "r")
        origin.commit("remote")
        with pytest.raises(RemoteError):
            pull(local, origin)

    def test_fetch_branch_copies_objects_only(self, origin):
        other = Repository.init("scratch", "carol")
        tip = fetch_branch(origin, other, "main")
        assert tip in other.store
        assert not other.refs.has_branch("main")
        with pytest.raises(RemoteError):
            fetch_branch(origin, other, "missing")


class TestIgnoreRules:
    def test_defaults_ignore_state_dirs_and_pyc(self):
        rules = IgnoreRules()
        assert rules.matches("/.gitcite/state.json")
        assert rules.matches("/pkg/__pycache__/mod.cpython-311.pyc")
        assert rules.matches("/mod.pyc")
        assert not rules.matches("/src/main.py")

    def test_directory_pattern_only_matches_directories(self):
        rules = IgnoreRules(["build/"])
        assert rules.matches("/build", is_directory=True)
        assert rules.matches("/build/out.bin")
        assert not rules.matches("/build")  # a *file* named build is kept

    def test_from_text_and_comments(self):
        rules = IgnoreRules.from_text("# comment\n*.log\n\ntmp/\n")
        assert rules.matches("/server.log")
        assert rules.matches("/tmp/scratch.txt")
        assert not rules.matches("/keep.txt")

    def test_full_path_patterns(self):
        rules = IgnoreRules(["docs/*.md"])
        assert rules.matches("/docs/guide.md")
        assert not rules.matches("/guide.md")

    def test_filter_paths(self):
        rules = IgnoreRules(["*.tmp"])
        assert rules.filter_paths(["/a.tmp", "/b.txt"]) == ["/b.txt"]


class TestDiskWorktree:
    def test_export_and_import_round_trip(self, origin, tmp_path):
        target = tmp_path / "checkout"
        written = export_worktree(origin, target)
        assert (target / "src" / "lib.py").read_text() == "lib = 1\n"
        assert "/src/lib.py" in written

        fresh = Repository.init("reimport", "alice")
        imported = import_worktree(fresh, target)
        assert imported == sorted(origin.worktree)
        assert fresh.worktree == origin.worktree

    def test_import_honours_ignore_rules(self, origin, tmp_path):
        target = tmp_path / "checkout"
        export_worktree(origin, target)
        (target / ".gitcite").mkdir()
        (target / ".gitcite" / "state.json").write_text("{}")
        (target / "junk.pyc").write_bytes(b"\x00")
        fresh = Repository.init("reimport", "alice")
        imported = import_worktree(fresh, target)
        assert all(".gitcite" not in path and not path.endswith(".pyc") for path in imported)

    def test_export_snapshot_of_old_version(self, origin, tmp_path):
        first = origin.head_oid()
        origin.write_file("src/lib.py", "lib = 2\n")
        origin.commit("bump")
        export_snapshot(origin, first, tmp_path / "old")
        assert (tmp_path / "old" / "src" / "lib.py").read_text() == "lib = 1\n"

    def test_import_requires_directory(self, origin, tmp_path):
        with pytest.raises(VCSError):
            import_worktree(origin, tmp_path / "missing")
