"""Cross-module edge-case and failure-injection tests.

These cover situations the happy-path suites do not reach: malformed remote
citation files arriving over the API, citation operations racing with
hosting-platform state, unusual repository shapes, and defensive behaviour of
the manager when the working tree is manipulated behind its back.
"""

import base64

import pytest

from repro.errors import CitationFileError, RefError
from repro.citation.citefile import CITATION_FILE_PATH, load_citation_bytes
from repro.citation.manager import CitationManager
from repro.extension.client import ExtensionClient
from repro.hub.api import RestApi
from repro.hub.server import HostingPlatform
from repro.vcs.repository import Repository


class TestUnusualRepositoryShapes:
    def test_empty_repository_can_be_citation_enabled(self):
        repo = Repository.init("blank", "alice")
        manager = CitationManager(repo)
        manager.init_citations()
        oid = manager.commit("enable citations on an empty project")
        assert repo.read_file_at(oid, CITATION_FILE_PATH)
        assert manager.cite("/anything.py").citation.owner == "alice"

    def test_single_file_repository(self):
        repo = Repository.init("tiny", "bob")
        repo.write_file("only.py", "pass\n")
        repo.commit("only file")
        manager = CitationManager(repo)
        manager.init_citations()
        manager.add_cite("/only.py", manager.default_root_citation(authors=["Bob"]))
        manager.commit("cite the only file")
        assert manager.cite("/only.py").is_explicit
        assert manager.validate().is_consistent

    def test_deeply_nested_paths(self):
        repo = Repository.init("deep", "carol")
        deep_path = "/" + "/".join(f"level{i}" for i in range(25)) + "/leaf.py"
        repo.write_file(deep_path, "leaf\n")
        repo.commit("deep tree")
        manager = CitationManager(repo)
        manager.init_citations()
        resolved = manager.cite(deep_path)
        assert resolved.source_path == "/"
        manager.add_cite("/level0/level1", manager.default_root_citation(authors=["Mid"]))
        assert manager.cite(deep_path).citation.authors == ("Mid",)

    def test_unicode_paths_and_authors(self):
        repo = Repository.init("unicode", "dora")
        repo.write_file("données/analyse.py", "x = 1\n")
        repo.commit("unicode path")
        manager = CitationManager(repo)
        manager.init_citations(manager.default_root_citation(authors=["Jürgen Müller", "François"]))
        manager.commit("enable")
        stored = load_citation_bytes(repo.read_file(CITATION_FILE_PATH))
        assert stored.root_citation().authors == ("Jürgen Müller", "François")
        assert manager.cite("/données/analyse.py").citation.authors[0] == "Jürgen Müller"

    def test_checkout_of_old_version_then_cite(self):
        repo = Repository.init("timey", "eve")
        repo.write_file("a.py", "v1\n")
        repo.commit("v1")
        manager = CitationManager(repo)
        manager.init_citations()
        v_enabled = manager.commit("enable")
        repo.write_file("a.py", "v2\n")
        v2 = manager.commit("v2")
        repo.checkout(v_enabled)
        manager.reload()
        assert repo.file_text("/a.py") == "v1\n"
        assert manager.cite("/a.py").citation.owner == "eve"
        # The newer version is still reachable and citable by ref.
        assert manager.cite("/a.py", ref=v2).citation.owner == "eve"


class TestManagerDefensiveness:
    def test_manual_worktree_edit_of_citation_file_is_picked_up_on_reload(self, enabled_manager):
        manager = enabled_manager
        # Simulate an out-of-band edit (which the paper forbids for users, but
        # the tool must at least parse what is on disk after a reload).
        function = manager.citation_function().copy()
        function.put("/src/main.py", manager.default_root_citation(authors=["Sneaky"]), False)
        from repro.citation.citefile import dump_citation_bytes

        manager.repo.write_file(CITATION_FILE_PATH, dump_citation_bytes(function))
        reloaded = manager.reload()
        assert reloaded.get_explicit("/src/main.py") is not None

    def test_corrupt_citation_file_raises_cleanly(self, enabled_manager):
        enabled_manager.repo.write_file(CITATION_FILE_PATH, b"{broken json")
        with pytest.raises(CitationFileError):
            enabled_manager.reload()

    def test_cite_of_version_without_citation_file(self, simple_repo):
        manager = CitationManager(simple_repo)
        first = simple_repo.head_oid()
        manager.init_citations()
        manager.commit("enable")
        with pytest.raises(CitationFileError):
            manager.citation_function_at(first)

    def test_merge_cite_with_unknown_branch(self, enabled_manager):
        with pytest.raises(RefError):
            enabled_manager.merge_cite("does-not-exist")

    def test_copy_single_file_subtree(self, enabled_manager, other_citation):
        source = Repository.init("src-single", "chenli")
        source.write_file("algo.py", "algorithm\n")
        source.commit("single file")
        source_manager = CitationManager(source)
        source_manager.init_citations(other_citation)
        source_manager.commit("enable")
        outcome = enabled_manager.copy_cite(source, "/algo.py", "/vendor/algo.py")
        assert outcome.copied_files == ("/vendor/algo.py",)
        assert enabled_manager.cite("/vendor/algo.py").citation == other_citation


class TestHostedEdgeCases:
    @pytest.fixture
    def hosted(self, enabled_manager):
        platform = HostingPlatform()
        platform.register_user("alice")
        platform.host_repository(enabled_manager.repo)
        return platform, RestApi(platform), platform.issue_token("alice").value

    def test_malformed_remote_citation_file_is_reported(self, hosted):
        platform, api, token = hosted
        # A member pushes a broken citation.cite through the raw contents API
        # (bypassing the extension); the extension then refuses to parse it.
        payload = {
            "message": "break the citation file",
            "content": base64.b64encode(b"[1, 2, 3]").decode(),
        }
        assert api.put(f"/repos/alice/demo/contents{CITATION_FILE_PATH}", payload, token=token).ok
        client = ExtensionClient(api, token=token)
        with pytest.raises(CitationFileError):
            client.citation_function("alice/demo")

    def test_extension_on_specific_historic_ref(self, hosted, sample_citation):
        platform, api, token = hosted
        hosted_repo = platform.get_repository("alice/demo").repo
        historic = hosted_repo.head_oid()
        # Advance the remote with another citation; the old ref still resolves to the old state.
        client = ExtensionClient(api, token=token)
        client.add_citation("alice/demo", "/README.md", sample_citation)
        assert client.view_node("alice/demo", "/README.md").explicit_citation == sample_citation
        old_view = client.view_node("alice/demo", "/README.md", ref=historic)
        assert old_view.explicit_citation is None

    def test_listing_tree_of_missing_ref(self, hosted):
        platform, _, token = hosted
        with pytest.raises(Exception):
            platform.list_tree("alice/demo", ref="no-such-ref", token=token)

    def test_fork_of_fork_preserves_citations(self, hosted):
        platform, api, token = hosted
        platform.register_user("second")
        platform.register_user("third")
        token2 = platform.issue_token("second").value
        token3 = platform.issue_token("third").value
        platform.fork("alice/demo", token=token2)
        platform.fork("second/demo", token=token3)
        nested = platform.get_repository("third/demo")
        manager = CitationManager(nested.repo)
        assert manager.cite("/docs/guide.md").citation.owner == "alice"
