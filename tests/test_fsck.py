"""Corruption matrix for ``gitcite fsck [--repair]``.

Each test damages one artefact class of an on-disk working copy — loose
object files, pack records, the per-pack ``.idx``, the multi-pack
``.midx``, ``state.json``, orphan temp files, citation blobs, whole missing
objects — and asserts three things: the audit *detects* it (right category,
right severity), ``--repair`` recovers everything recoverable (quarantine,
salvage, index rebuild — never silent deletion), and what cannot be
recovered is reported as unrecoverable together with the refs it strands.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.citation.manager import CitationManager
from repro.cli.main import main
from repro.cli.storage import save_repository
from repro.vcs.fsck import fsck_working_copy
from repro.vcs.repository import Repository


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.reset()
    yield
    faults.reset()


def _make_working_copy(root, kind, bad_citation: bool = False):
    root.mkdir(parents=True, exist_ok=True)
    repo = Repository.init("fscktest", "alice")
    repo.write_file("/a.txt", "alpha\n")
    repo.write_file("/docs/b.txt", "beta\n")
    repo.commit("c0", author_name="alice")
    manager = CitationManager(repo)
    manager.init_citations()
    manager.commit("enable citations")
    if bad_citation:
        repo.write_file("/citation.cite", "this is { not a citation file")
        repo.commit("break the citation file", author_name="alice")
    repo.write_file("/a.txt", "alpha two\n")
    repo.commit("c1", author_name="alice")
    save_repository(repo, root, storage=kind)
    return repo


def _blob_oid(repo, content: bytes) -> str:
    for oid in repo.store.iter_oids():
        if repo.store.get_type(oid) == "blob" and repo.store.get_blob(oid).data == content:
            return oid
    raise AssertionError(f"no blob with content {content!r}")


def _loose_path(root, oid: str):
    return root / ".gitcite" / "objects" / oid[:2] / oid[2:]


def _pack_files(root):
    return sorted((root / ".gitcite" / "pack").glob("pack-*.pack"))


def _categories(report, severity=None):
    return {
        f.category
        for f in report.findings
        if severity is None or f.severity == severity
    }


# ---------------------------------------------------------------------------
# Clean stores
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("kind", ["memory", "loose", "pack"])
def test_clean_store_passes(tmp_path, kind):
    _make_working_copy(tmp_path / "wc", kind)
    report = fsck_working_copy(tmp_path / "wc")
    assert report.ok, [str(f) for f in report.findings]
    assert report.objects_checked > 0
    assert report.refs_checked >= 1
    assert report.citations_checked >= 1
    assert not report.unrecoverable
    assert main(["fsck", "-C", str(tmp_path / "wc")]) == 0


def test_not_a_working_copy(tmp_path):
    assert main(["fsck", "-C", str(tmp_path)]) != 0


# ---------------------------------------------------------------------------
# Loose objects
# ---------------------------------------------------------------------------


def test_loose_flipped_byte_detected_quarantined_and_stranded(tmp_path):
    root = tmp_path / "wc"
    repo = _make_working_copy(root, "loose")
    victim = _blob_oid(repo, b"beta\n")
    path = _loose_path(root, victim)
    raw = bytearray(path.read_bytes())
    raw[len(raw) // 2] ^= 0xFF
    path.write_bytes(bytes(raw))

    report = fsck_working_copy(root)
    assert not report.ok
    assert "loose" in _categories(report, "error")
    assert victim in {f.oid for f in report.errors()}

    repaired = fsck_working_copy(root, repair=True)
    assert not path.exists(), "corrupt loose file must leave the object directory"
    quarantine = root / ".gitcite" / "quarantine"
    assert any(p.name == path.name for p in quarantine.iterdir())
    assert victim in repaired.unrecoverable
    assert any("branch" in ref for ref in repaired.unrecoverable[victim])
    assert main(["fsck", "-C", str(root)]) == 1  # loss is permanent


def test_loose_truncated_file_detected(tmp_path):
    root = tmp_path / "wc"
    repo = _make_working_copy(root, "loose")
    victim = _blob_oid(repo, b"alpha two\n")
    path = _loose_path(root, victim)
    path.write_bytes(path.read_bytes()[:3])
    report = fsck_working_copy(root)
    assert not report.ok
    assert any(
        f.category == "loose" and f.oid == victim and "unreadable" in f.detail
        for f in report.errors()
    )


def test_missing_loose_object_strands_refs(tmp_path):
    root = tmp_path / "wc"
    repo = _make_working_copy(root, "loose")
    victim = _blob_oid(repo, b"beta\n")
    _loose_path(root, victim).unlink()
    report = fsck_working_copy(root, repair=True)
    assert not report.ok
    assert "connectivity" in _categories(report, "error")
    assert victim in report.unrecoverable
    assert report.unrecoverable[victim]  # names at least one stranded ref


# ---------------------------------------------------------------------------
# Pack files and their indexes
# ---------------------------------------------------------------------------


def test_pack_record_flip_is_salvaged_around(tmp_path):
    root = tmp_path / "wc"
    repo = _make_working_copy(root, "pack")
    victim = _blob_oid(repo, b"beta\n")
    (pack_path,) = _pack_files(root)
    data = bytearray(pack_path.read_bytes())
    header = data.find(f" {victim} ".encode("ascii"))
    assert header >= 0, "victim record not found in the pack"
    body = data.index(b"\n", header) + 1
    data[body + 1] ^= 0xFF
    pack_path.write_bytes(bytes(data))

    report = fsck_working_copy(root)
    assert not report.ok
    assert "pack" in _categories(report, "error")

    before = report.objects_checked
    repaired = fsck_working_copy(root, repair=True)
    # The damaged pack was quarantined, never deleted.
    quarantine = root / ".gitcite" / "quarantine"
    assert any(p.suffix == ".pack" for p in quarantine.iterdir())
    # Everything that still verified was salvaged into a fresh pack.
    assert _pack_files(root), "salvage must leave a readable pack behind"
    assert repaired.objects_checked == before - 1
    # Only the flipped record is lost; its stranded refs are named.
    assert set(repaired.unrecoverable) == {victim}
    assert any("branch" in ref for ref in repaired.unrecoverable[victim])


def test_missing_idx_is_self_healing_warning(tmp_path):
    root = tmp_path / "wc"
    _make_working_copy(root, "pack")
    (pack_path,) = _pack_files(root)
    idx = pack_path.with_suffix(".idx")
    idx.unlink()
    report = fsck_working_copy(root)
    assert report.ok  # a missing cache is degradation, not damage
    assert "idx" in _categories(report, "warning")
    repaired = fsck_working_copy(root, repair=True)
    assert repaired.ok
    # Repair itself does not need to rebuild a merely-missing idx (the
    # backend does on open), but the store must remain fully readable.
    assert not repaired.unrecoverable


def test_garbage_idx_is_error_and_rebuilt(tmp_path):
    root = tmp_path / "wc"
    _make_working_copy(root, "pack")
    (pack_path,) = _pack_files(root)
    idx = pack_path.with_suffix(".idx")
    idx.write_bytes(b"not an index at all")
    report = fsck_working_copy(root)
    assert not report.ok
    assert "idx" in _categories(report, "error")
    repaired = fsck_working_copy(root, repair=True)
    assert repaired.ok, [str(f) for f in repaired.findings]
    assert any("rebuilt" in action for action in repaired.repaired)
    assert main(["fsck", "-C", str(root)]) == 0


def test_garbage_midx_is_warning_and_rebuilt(tmp_path):
    root = tmp_path / "wc"
    _make_working_copy(root, "pack")
    midx = root / ".gitcite" / "pack" / "multi-pack-index.midx"
    assert midx.is_file()
    midx.write_bytes(b"RMIDXgarbage")
    report = fsck_working_copy(root)
    assert report.ok  # unparseable midx is rejected and rebuilt on open
    assert "midx" in _categories(report, "warning")
    repaired = fsck_working_copy(root, repair=True)
    assert repaired.ok
    assert not _categories(repaired, "warning") & {"midx"}


def test_wrong_midx_entry_is_error_and_rebuilt(tmp_path):
    root = tmp_path / "wc"
    _make_working_copy(root, "pack")
    midx = root / ".gitcite" / "pack" / "multi-pack-index.midx"
    data = bytearray(midx.read_bytes())
    data[-1] ^= 0xFF  # last entry's offset now points at nothing
    midx.write_bytes(bytes(data))
    report = fsck_working_copy(root)
    assert not report.ok
    assert "midx" in _categories(report, "error")
    repaired = fsck_working_copy(root, repair=True)
    assert repaired.ok, [str(f) for f in repaired.findings]


# ---------------------------------------------------------------------------
# State file, temp files, citations
# ---------------------------------------------------------------------------


def test_corrupt_state_file_is_an_error(tmp_path):
    root = tmp_path / "wc"
    _make_working_copy(root, "pack")
    (root / ".gitcite" / "state.json").write_text("{ torn mid-write", encoding="utf-8")
    report = fsck_working_copy(root)
    assert not report.ok
    assert "state" in _categories(report, "error")
    assert main(["fsck", "-C", str(root)]) == 1


def test_orphan_tmp_files_warned_and_swept(tmp_path):
    root = tmp_path / "wc"
    _make_working_copy(root, "pack")
    orphan = root / ".gitcite" / ".tmp-state.json.999.0.dead"
    orphan.write_bytes(b"torn")
    report = fsck_working_copy(root)
    assert report.ok
    assert "tmp" in _categories(report, "warning")
    repaired = fsck_working_copy(root, repair=True)
    assert not orphan.exists()
    assert repaired.ok
    assert not _categories(repaired, "warning") & {"tmp"}


def test_unparseable_citation_file_reported(tmp_path):
    root = tmp_path / "wc"
    _make_working_copy(root, "pack", bad_citation=True)
    report = fsck_working_copy(root)
    assert not report.ok
    assert "citation" in _categories(report, "error")
    # Object storage itself is fine: nothing to repair, nothing unrecoverable.
    repaired = fsck_working_copy(root, repair=True)
    assert not repaired.unrecoverable


def test_memory_layout_embedded_corruption(tmp_path):
    root = tmp_path / "wc"
    _make_working_copy(root, "memory")
    state_path = root / ".gitcite" / "state.json"
    text = state_path.read_text(encoding="utf-8")
    # Corrupt one embedded payload: swap the first base64 chunk's case.
    import re

    match = re.search(r'"payload": "([A-Za-z0-9+/=]{8})', text)
    assert match
    chunk = match.group(1)
    state_path.write_text(text.replace(chunk, chunk.swapcase(), 1), encoding="utf-8")
    report = fsck_working_copy(root)
    assert not report.ok
    assert "state" in _categories(report, "error")
