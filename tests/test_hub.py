"""Unit tests for the hosting-platform simulator (models, auth, rate limits, server, API)."""

import base64

import pytest

from repro.errors import (
    AuthenticationError,
    CorruptObjectError,
    NotFoundError,
    PermissionDeniedError,
    RateLimitExceededError,
    ValidationError,
)
from repro.citation.citefile import CITATION_FILE_PATH
from repro.hub.api import RestApi
from repro.hub.models import Permission
from repro.hub.ratelimit import RateLimiter
from repro.hub.server import HostingPlatform
from repro.vcs.repository import Repository


@pytest.fixture
def platform(enabled_manager) -> HostingPlatform:
    """A platform hosting the enabled demo repository plus two users."""
    platform = HostingPlatform()
    platform.register_user("alice", name="Alice Smith")
    platform.register_user("bob", name="Bob Jones")
    platform.host_repository(enabled_manager.repo)
    return platform


@pytest.fixture
def alice_token(platform) -> str:
    return platform.issue_token("alice").value


@pytest.fixture
def bob_token(platform) -> str:
    return platform.issue_token("bob").value


class TestUsersAndTokens:
    def test_register_and_lookup(self, platform):
        assert platform.get_user("alice").name == "Alice Smith"
        with pytest.raises(NotFoundError):
            platform.get_user("nobody")

    def test_duplicate_login_rejected(self, platform):
        with pytest.raises(ValidationError):
            platform.register_user("alice")

    def test_illegal_login_rejected(self, platform):
        with pytest.raises(ValidationError):
            platform.register_user("has space")

    def test_token_authentication(self, platform, alice_token):
        token = platform.tokens.authenticate(alice_token)
        assert token.login == "alice"
        assert platform.tokens.authenticate(None) is None
        with pytest.raises(AuthenticationError):
            platform.tokens.authenticate("ghs_bogus")

    def test_token_revocation(self, platform, alice_token):
        platform.tokens.revoke(alice_token)
        with pytest.raises(AuthenticationError):
            platform.tokens.authenticate(alice_token)

    def test_tokens_are_unique_per_issuance(self, platform):
        first = platform.issue_token("alice").value
        second = platform.issue_token("alice").value
        assert first != second
        assert len(platform.tokens.tokens_for("alice")) >= 2


class TestPermissions:
    def test_owner_is_admin(self, platform):
        assert platform.permission_for("alice/demo", None) == Permission.READ
        token = platform.issue_token("alice").value
        assert platform.permission_for("alice/demo", token) == Permission.ADMIN

    def test_collaborator_gets_write(self, platform, bob_token):
        assert platform.permission_for("alice/demo", bob_token) == Permission.READ
        platform.add_collaborator("alice/demo", "bob", "write")
        assert platform.permission_for("alice/demo", bob_token) == Permission.WRITE
        hosted = platform.get_repository("alice/demo")
        assert hosted.is_member("bob") and not hosted.is_member("stranger")

    def test_private_repo_hidden_from_outsiders(self, platform, bob_token, alice_token):
        platform.create_repository("alice", "secret", private=True)
        with pytest.raises(NotFoundError):
            platform.get_repository("alice/secret", token=bob_token)
        assert platform.get_repository("alice/secret", token=alice_token).private

    def test_write_requires_membership(self, platform, bob_token):
        with pytest.raises(PermissionDeniedError):
            platform.put_file("alice/demo", "/new.txt", b"x", message="add", token=bob_token)

    def test_anonymous_write_rejected(self, platform):
        with pytest.raises(AuthenticationError):
            platform.put_file("alice/demo", "/new.txt", b"x", message="add", token=None)


class TestRepositoryOperations:
    def test_create_and_list(self, platform):
        platform.create_repository("bob", "toolbox", description="bits")
        assert [r.name for r in platform.list_repositories("bob")] == ["toolbox"]
        assert len(platform.list_repositories()) == 2

    def test_get_file_and_tree(self, platform):
        data = platform.get_file("alice/demo", "/README.md")
        assert data == b"# demo\n"
        listing = platform.list_tree("alice/demo")
        paths = {entry["path"] for entry in listing}
        assert "/src/main.py" in paths and "/src" in paths
        assert platform.path_exists("alice/demo", CITATION_FILE_PATH)
        with pytest.raises(NotFoundError):
            platform.get_file("alice/demo", "/missing.txt")

    def test_put_file_commits_on_branch(self, platform, alice_token):
        oid = platform.put_file(
            "alice/demo", "/docs/new.md", b"new\n", message="add doc", token=alice_token
        )
        hosted = platform.get_repository("alice/demo")
        assert hosted.repo.head_oid() == oid
        assert hosted.repo.read_file("/docs/new.md") == b"new\n"
        with pytest.raises(NotFoundError):
            platform.put_file("alice/demo", "/x", b"", message="m", token=alice_token, branch="nope")

    def test_delete_file(self, platform, alice_token):
        platform.delete_file("alice/demo", "/docs/guide.md", message="drop", token=alice_token)
        assert not platform.get_repository("alice/demo").repo.file_exists("/docs/guide.md")
        with pytest.raises(NotFoundError):
            platform.delete_file("alice/demo", "/docs/guide.md", message="again", token=alice_token)

    def test_fork_copies_history_to_new_owner(self, platform, bob_token):
        hosted = platform.fork("alice/demo", token=bob_token)
        assert hosted.full_name == "bob/demo"
        assert hosted.forked_from == "alice/demo"
        assert hosted.repo.head_oid() == platform.get_repository("alice/demo").repo.head_oid()

    def test_clone_and_push_round_trip(self, platform, alice_token):
        local = platform.clone("alice/demo")
        local.write_file("/pushed.txt", "pushed\n")
        tip = local.commit("local work")
        assert platform.receive_push("alice/demo", alice_token, local) == tip
        assert platform.get_repository("alice/demo").repo.file_exists("/pushed.txt")

    def test_push_requires_write(self, platform, bob_token):
        local = platform.clone("alice/demo")
        local.write_file("/x.txt", "x")
        local.commit("work")
        with pytest.raises(PermissionDeniedError):
            platform.receive_push("alice/demo", bob_token, local)

    def test_commits_listing(self, platform):
        commits = platform.commits("alice/demo", limit=1)
        assert len(commits) == 1
        assert "message" in commits[0]["commit"]


class TestRateLimiter:
    def test_quota_enforced(self):
        limiter = RateLimiter(authenticated_limit=2, anonymous_limit=1)
        limiter.check("alice")
        limiter.check("alice")
        with pytest.raises(RateLimitExceededError):
            limiter.check("alice")
        with pytest.raises(RateLimitExceededError):
            (limiter.check(None), limiter.check(None))

    def test_reset_and_status(self):
        limiter = RateLimiter(authenticated_limit=5)
        limiter.check("alice")
        assert limiter.status("alice").used == 1
        limiter.reset("alice")
        assert limiter.status("alice").remaining == 5
        limiter.check("bob")
        limiter.reset()
        assert limiter.status("bob").used == 0

    def test_can_be_disabled(self):
        limiter = RateLimiter(authenticated_limit=1, enabled=False)
        for _ in range(5):
            limiter.check("alice")


class TestRestApi:
    @pytest.fixture
    def api(self, platform) -> RestApi:
        return RestApi(platform)

    def test_get_user(self, api, alice_token):
        response = api.get("/user", token=alice_token)
        assert response.ok and response.json["login"] == "alice"

    def test_get_repo_and_404(self, api):
        assert api.get("/repos/alice/demo").json["full_name"] == "alice/demo"
        assert api.get("/repos/alice/none").status == 404
        assert api.get("/definitely/not/an/endpoint").status == 404

    def test_contents_get_decodes_to_original(self, api):
        response = api.get("/repos/alice/demo/contents/README.md")
        assert response.ok
        assert base64.b64decode(response.json["content"]) == b"# demo\n"

    def test_contents_put_requires_auth_and_payload(self, api, alice_token, bob_token):
        payload = {
            "message": "update readme",
            "content": base64.b64encode(b"# updated\n").decode(),
        }
        assert api.put("/repos/alice/demo/contents/README.md", payload, token=bob_token).status == 403
        assert api.put("/repos/alice/demo/contents/README.md", {"message": "x"}, token=alice_token).status == 422
        response = api.put("/repos/alice/demo/contents/README.md", payload, token=alice_token)
        assert response.status == 201
        assert base64.b64decode(
            api.get("/repos/alice/demo/contents/README.md").json["content"]
        ) == b"# updated\n"

    def test_contents_delete(self, api, alice_token):
        response = api.delete(
            "/repos/alice/demo/contents/docs/guide.md", {"message": "drop"}, token=alice_token
        )
        assert response.ok
        assert api.get("/repos/alice/demo/contents/docs/guide.md").status == 404

    def test_permission_endpoint(self, api, platform):
        platform.add_collaborator("alice/demo", "bob", "write")
        response = api.get("/repos/alice/demo/collaborators/bob/permission")
        assert response.json["permission"] == "write"
        assert api.get("/repos/alice/demo/collaborators/alice/permission").json["permission"] == "admin"

    def test_branches_commits_tree_fork(self, api, bob_token):
        assert api.get("/repos/alice/demo/branches").json[0]["name"] == "main"
        assert api.get("/repos/alice/demo/commits?per_page=1").ok
        assert any(e["path"] == "/src" for e in api.get("/repos/alice/demo/git/trees/main").json["tree"])
        fork = api.post("/repos/alice/demo/forks", token=bob_token)
        assert fork.status == 201 and fork.json["full_name"] == "bob/demo"

    def test_rate_limit_endpoint_and_enforcement(self, platform, alice_token):
        platform.rate_limiter = RateLimiter(authenticated_limit=2)
        api = RestApi(platform)
        assert api.get("/repos/alice/demo", token=alice_token).ok
        assert api.get("/repos/alice/demo", token=alice_token).ok
        assert api.get("/repos/alice/demo", token=alice_token).status == 429
        # /rate_limit itself is never counted.
        status = api.get("/rate_limit", token=alice_token)
        assert status.ok and status.json["resources"]["core"]["remaining"] == 0

    def test_invalid_token_is_401(self, api):
        assert api.get("/repos/alice/demo", token="ghs_wrong").status == 401

    def test_contents_put_rejects_malformed_base64(self, api, alice_token):
        """Junk characters in the base64 payload are a 422, not a silent
        commit of garbage bytes (b64decode without validate=True discards
        non-alphabet characters instead of raising)."""
        before = api.get("/repos/alice/demo/contents/README.md").json["content"]
        payload = {"message": "sneaky", "content": "QUJD####WFla"}
        response = api.put("/repos/alice/demo/contents/README.md", payload, token=alice_token)
        assert response.status == 422
        assert "base64" in response.json["message"]
        # The file is untouched — no commit happened.
        assert api.get("/repos/alice/demo/contents/README.md").json["content"] == before

    def test_contents_put_accepts_valid_base64(self, api, alice_token):
        payload = {
            "message": "legit",
            "content": base64.b64encode(b"clean bytes\n").decode("ascii"),
        }
        response = api.put("/repos/alice/demo/contents/README.md", payload, token=alice_token)
        assert response.status == 201
        assert base64.b64decode(
            api.get("/repos/alice/demo/contents/README.md").json["content"]
        ) == b"clean bytes\n"

    def test_contents_put_accepts_mime_wrapped_base64(self, api, alice_token):
        """RFC 2045 encoders wrap at 76 columns; the validation must strip
        the line breaks, not reject the payload."""
        body = bytes(range(256)) * 2
        payload = {
            "message": "wrapped",
            "content": base64.encodebytes(body).decode("ascii"),
        }
        assert "\n" in payload["content"]
        response = api.put("/repos/alice/demo/contents/blob.bin", payload, token=alice_token)
        assert response.status == 201
        assert base64.b64decode(
            api.get("/repos/alice/demo/contents/blob.bin").json["content"]
        ) == body


class TestStorageCorruptionSurfaces:
    """Storage corruption must propagate from the contents API, never be
    masked as a missing file (404 / ``path_exists() is False``)."""

    @pytest.fixture
    def loose_platform(self, tmp_path):
        platform = HostingPlatform()
        platform.register_user("alice")
        repo = Repository.init("ondisk", "alice", storage=f"loose:{tmp_path / 'objects'}")
        repo.write_file("/data/readme.txt", b"important bytes\n")
        repo.commit("seed", author_name="alice")
        platform.host_repository(repo)
        return platform, repo, tmp_path / "objects"

    @staticmethod
    def _corrupt(objects_root, oid):
        victim = objects_root / oid[:2] / oid[2:]
        assert victim.is_file()
        victim.write_bytes(b"not zlib at all")

    def test_corrupt_blob_propagates_from_get_file(self, loose_platform):
        platform, repo, objects_root = loose_platform
        blob_oid = repo.blob_oid_at("HEAD", "/data/readme.txt")
        self._corrupt(objects_root, blob_oid)
        repo.store._cache.clear()  # force the next read to hit the disk
        with pytest.raises(CorruptObjectError):
            platform.get_file("alice/ondisk", "/data/readme.txt")

    def test_corrupt_tree_propagates_from_path_exists(self, loose_platform):
        platform, repo, objects_root = loose_platform
        tree_oid = repo.tree_oid_of("HEAD")
        self._corrupt(objects_root, tree_oid)
        repo.store._cache.clear()
        with pytest.raises(CorruptObjectError):
            platform.path_exists("alice/ondisk", "/data/readme.txt")

    def test_rest_layer_maps_corruption_to_500_not_404(self, loose_platform):
        platform, repo, objects_root = loose_platform
        blob_oid = repo.blob_oid_at("HEAD", "/data/readme.txt")
        self._corrupt(objects_root, blob_oid)
        repo.store._cache.clear()
        api = RestApi(platform)
        response = api.get("/repos/alice/ondisk/contents/data/readme.txt")
        assert response.status == 500
        assert "storage" in response.json["message"]

    def test_missing_paths_still_read_as_absent(self, loose_platform):
        platform, _, _ = loose_platform
        with pytest.raises(NotFoundError):
            platform.get_file("alice/ondisk", "/data/nope.txt")
        with pytest.raises(NotFoundError):
            platform.get_file("alice/ondisk", "/data/readme.txt", ref="no-such-branch")
        assert platform.path_exists("alice/ondisk", "/data/nope.txt") is False
        assert platform.path_exists("alice/ondisk", "/x", ref="no-such-branch") is False


class TestGitWireEndpoints:
    """The sync subsystem over the REST API: refs, upload-pack, receive-pack."""

    @pytest.fixture
    def api(self, platform) -> RestApi:
        return RestApi(platform)

    @staticmethod
    def _wire_clone(api, slug, token=None, owner="carol"):
        """Clone over the wire endpoints only (no platform-object access)."""
        from repro.vcs.transfer import apply_bundle, update_refs_from_bundle

        refs = api.get(f"/repos/{slug}/git/refs", token=token).json
        wants = [entry["sha"] for entry in refs["branches"]]
        response = api.post(f"/repos/{slug}/git/upload-pack", {"wants": wants}, token=token)
        assert response.ok
        data = base64.b64decode(response.json["bundle"])
        local = Repository.init("clone", owner, default_branch=refs["default_branch"])
        result = apply_bundle(local.store, data)
        update_refs_from_bundle(local, result.bundle)
        return local, refs

    @staticmethod
    def _push_bundle(local, haves):
        from repro.vcs.transfer import advertise_refs, create_bundle

        data = create_bundle(
            local.store, [local.head_oid()], haves=haves, refs=advertise_refs(local)
        )
        return {"bundle": base64.b64encode(data).decode("ascii")}

    def test_refs_advertisement_shape(self, api, platform):
        response = api.get("/repos/alice/demo/git/refs")
        assert response.ok
        body = response.json
        hosted = platform.get_repository("alice/demo")
        assert body["default_branch"] == hosted.default_branch
        names = {entry["name"]: entry["sha"] for entry in body["branches"]}
        assert names == hosted.repo.branches()
        assert body["head"]["sha"] == hosted.repo.head_oid()

    def test_wire_clone_matches_platform_clone(self, api, platform):
        local, refs = self._wire_clone(api, "alice/demo")
        hosted = platform.get_repository("alice/demo")
        assert local.head_oid() == hosted.repo.head_oid()
        assert local.snapshot() == hosted.repo.snapshot()

    def test_wire_incremental_push_transfers_only_new_objects(self, api, platform, alice_token):
        local, refs = self._wire_clone(api, "alice/demo", owner="alice")
        local.write_file("wire.txt", "pushed over the wire\n")
        tip = local.commit("wire push")
        haves = [entry["sha"] for entry in refs["branches"]]
        response = api.post(
            "/repos/alice/demo/git/receive-pack",
            self._push_bundle(local, haves),
            token=alice_token,
        )
        assert response.ok, response.json
        hosted = platform.get_repository("alice/demo")
        branch = refs["default_branch"]
        assert response.json["updated"][branch] == tip
        assert hosted.repo.head_oid() == tip
        # Thin bundle: one commit, the new blob and the dirty tree chain.
        assert response.json["objects_in_bundle"] <= 5
        assert hosted.repo.read_file_at(tip, "/wire.txt") == b"pushed over the wire\n"

    def test_receive_pack_requires_write_permission(self, api, platform, bob_token):
        local, refs = self._wire_clone(api, "alice/demo", owner="bob")
        local.write_file("nope.txt", "n")
        local.commit("unauthorised")
        payload = self._push_bundle(local, [entry["sha"] for entry in refs["branches"]])
        assert api.post("/repos/alice/demo/git/receive-pack", payload).status == 401
        assert api.post("/repos/alice/demo/git/receive-pack", payload, token=bob_token).status == 403
        # And a read-capable collaborator is still not enough.
        platform.add_collaborator("alice/demo", "bob", Permission.READ)
        assert api.post("/repos/alice/demo/git/receive-pack", payload, token=bob_token).status == 403

    def test_receive_pack_rejects_corrupt_bundle_untouched(self, api, platform, alice_token):
        local, refs = self._wire_clone(api, "alice/demo", owner="alice")
        local.write_file("wire.txt", "will be corrupted\n")
        local.commit("doomed")
        payload = self._push_bundle(local, [entry["sha"] for entry in refs["branches"]])
        raw = base64.b64decode(payload["bundle"])
        position = len(raw) * 2 // 3
        corrupted = raw[:position] + bytes([raw[position] ^ 0x55]) + raw[position + 1:]
        hosted = platform.get_repository("alice/demo")
        head_before = hosted.repo.head_oid()
        objects_before = set(hosted.repo.store.iter_oids())
        response = api.post(
            "/repos/alice/demo/git/receive-pack",
            {"bundle": base64.b64encode(corrupted).decode("ascii")},
            token=alice_token,
        )
        assert response.status == 422
        assert hosted.repo.head_oid() == head_before
        assert set(hosted.repo.store.iter_oids()) == objects_before
        # Malformed base64 is also a 422, not a crash.
        assert api.post(
            "/repos/alice/demo/git/receive-pack", {"bundle": "!!!"}, token=alice_token
        ).status == 422

    def test_receive_pack_rejects_non_fast_forward(self, api, platform, alice_token):
        local, refs = self._wire_clone(api, "alice/demo", owner="alice")
        hosted = platform.get_repository("alice/demo")
        hosted.repo.write_file("server-side.txt", "advanced\n")
        server_tip = hosted.repo.commit("server advances")
        local.write_file("diverged.txt", "d")
        local.commit("diverged")
        payload = self._push_bundle(local, [entry["sha"] for entry in refs["branches"]])
        response = api.post(
            "/repos/alice/demo/git/receive-pack", payload, token=alice_token
        )
        assert response.status == 422
        assert hosted.repo.head_oid() == server_tip
        forced = dict(payload)
        forced["force"] = True
        response = api.post(
            "/repos/alice/demo/git/receive-pack", forced, token=alice_token
        )
        assert response.ok
        assert hosted.repo.head_oid() == local.head_oid()

    def test_upload_pack_validates_wants(self, api, alice_token):
        assert api.post(
            "/repos/alice/demo/git/upload-pack", {"wants": []}, token=alice_token
        ).status == 422
        assert api.post(
            "/repos/alice/demo/git/upload-pack", {"wants": ["no-such-ref"]}, token=alice_token
        ).status == 404

    def test_wire_endpoints_are_rate_limited(self, platform, alice_token):
        platform.rate_limiter = RateLimiter(authenticated_limit=2)
        api = RestApi(platform)
        assert api.get("/repos/alice/demo/git/refs", token=alice_token).ok
        assert api.get("/repos/alice/demo/git/refs", token=alice_token).ok
        response = api.post(
            "/repos/alice/demo/git/receive-pack", {"bundle": ""}, token=alice_token
        )
        assert response.status == 429

    def test_upload_pack_rejects_non_string_wants_and_haves(self, api, alice_token):
        refs = api.get("/repos/alice/demo/git/refs", token=alice_token).json
        tip = refs["branches"][0]["sha"]
        assert api.post(
            "/repos/alice/demo/git/upload-pack",
            {"wants": [tip], "haves": [["not", "a", "string"]]},
            token=alice_token,
        ).status == 422
        assert api.post(
            "/repos/alice/demo/git/upload-pack",
            {"wants": [42]},
            token=alice_token,
        ).status == 422
