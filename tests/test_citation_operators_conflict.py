"""Unit tests for the citation operators and the conflict-resolution strategies."""

import pytest

from repro.errors import CitationError, CitationExistsError, CitationNotFoundError, ConsistencyError
from repro.citation.conflict import (
    AskUserStrategy,
    CitationConflict,
    FieldMergeStrategy,
    NewestStrategy,
    OursStrategy,
    TheirsStrategy,
    ThreeWayStrategy,
    available_strategies,
    strategy_by_name,
)
from repro.citation.function import CitationFunction
from repro.citation.operators import (
    AddCite,
    DelCite,
    GenCite,
    ModifyCite,
    OperationLog,
    apply_operation,
    apply_operations,
)


@pytest.fixture
def function(sample_citation):
    return CitationFunction.with_root(sample_citation)


class TestOperators:
    def test_addcite_attaches(self, function, other_citation):
        result = apply_operation(function, AddCite(path="/f1.py", citation=other_citation))
        assert result.changed
        assert function.resolve("/f1.py").is_explicit

    def test_addcite_on_cited_path_fails(self, function, other_citation):
        apply_operation(function, AddCite(path="/f1.py", citation=other_citation))
        with pytest.raises(CitationExistsError):
            apply_operation(function, AddCite(path="/f1.py", citation=other_citation))

    def test_modifycite_replaces(self, function, other_citation, sample_citation):
        apply_operation(function, AddCite(path="/f1.py", citation=other_citation))
        apply_operation(function, ModifyCite(path="/f1.py", citation=sample_citation))
        assert function.get_explicit("/f1.py") == sample_citation

    def test_modifycite_requires_existing(self, function, other_citation):
        with pytest.raises(CitationNotFoundError):
            apply_operation(function, ModifyCite(path="/nope.py", citation=other_citation))

    def test_delcite_removes(self, function, other_citation):
        apply_operation(function, AddCite(path="/f1.py", citation=other_citation))
        apply_operation(function, DelCite(path="/f1.py"))
        assert function.get_explicit("/f1.py") is None

    def test_delcite_on_root_protected(self, function):
        with pytest.raises(ConsistencyError):
            apply_operation(function, DelCite(path="/"))

    def test_gencite_is_read_only(self, function, sample_citation):
        result = apply_operation(function, GenCite(path="/anything/inside.py"))
        assert not result.changed
        assert result.resolved.citation == sample_citation
        assert len(function) == 1

    def test_apply_operations_sequence(self, function, other_citation):
        results = apply_operations(
            function,
            [
                AddCite(path="/a.py", citation=other_citation),
                GenCite(path="/a.py"),
                DelCite(path="/a.py"),
            ],
        )
        assert [r.changed for r in results] == [True, False, True]

    def test_unknown_operation_rejected(self, function):
        with pytest.raises(CitationError):
            apply_operation(function, object())  # type: ignore[arg-type]

    def test_describe_and_kind(self):
        assert AddCite(path="x.py", citation=None).kind == "AddCite"  # type: ignore[arg-type]
        assert "DelCite(/x.py)" == DelCite(path="x.py").describe()


class TestOperationLog:
    def test_summary_lists_mutating_operations_only(self, function, other_citation):
        log = OperationLog()
        log.record(apply_operation(function, AddCite(path="/a.py", citation=other_citation)))
        log.record(apply_operation(function, GenCite(path="/a.py")))
        log.record(apply_operation(function, DelCite(path="/a.py")))
        assert len(log) == 3
        assert len(log.mutating()) == 2
        summary = log.summary()
        assert "AddCite(/a.py)" in summary and "DelCite(/a.py)" in summary
        assert "GenCite" not in summary

    def test_empty_log_summary(self):
        assert OperationLog().summary() == "No citation changes"

    def test_clear(self, function, other_citation):
        log = OperationLog()
        log.record(apply_operation(function, AddCite(path="/a.py", citation=other_citation)))
        log.clear()
        assert len(log) == 0


@pytest.fixture
def conflict(sample_citation, other_citation) -> CitationConflict:
    return CitationConflict(path="/shared.py", ours=sample_citation, theirs=other_citation)


class TestStrategies:
    def test_ours_and_theirs(self, conflict, sample_citation, other_citation):
        assert OursStrategy().resolve(conflict).citation == sample_citation
        assert TheirsStrategy().resolve(conflict).citation == other_citation

    def test_newest_picks_latest_committed_date(self, conflict, sample_citation):
        # sample (2018-09) is newer than other (2018-03): ours wins here.
        assert NewestStrategy().resolve(conflict).citation == sample_citation
        flipped = CitationConflict(path="/x", ours=conflict.theirs, theirs=conflict.ours)
        assert NewestStrategy().resolve(flipped).citation == sample_citation

    def test_ask_without_chooser_leaves_unresolved(self, conflict):
        resolution = AskUserStrategy().resolve(conflict)
        assert not resolution.resolved and resolution.citation is None

    def test_ask_with_chooser(self, conflict, other_citation):
        strategy = AskUserStrategy(chooser=lambda c: c.theirs)
        resolution = strategy.resolve(conflict)
        assert resolution.resolved and resolution.citation == other_citation

    def test_three_way_auto_resolves_one_sided_change(self, sample_citation, other_citation):
        base = sample_citation
        changed = CitationConflict(path="/x", ours=base, theirs=other_citation, base=base)
        resolution = ThreeWayStrategy().resolve(changed)
        assert resolution.resolved and resolution.citation == other_citation
        mirrored = CitationConflict(path="/x", ours=other_citation, theirs=base, base=base)
        assert ThreeWayStrategy().resolve(mirrored).citation == other_citation

    def test_three_way_falls_back_when_both_changed(self, sample_citation, other_citation):
        base = sample_citation.with_changes(title="the base")
        conflict = CitationConflict(path="/x", ours=sample_citation, theirs=other_citation, base=base)
        resolution = ThreeWayStrategy(fallback=OursStrategy()).resolve(conflict)
        assert resolution.resolved and resolution.citation == sample_citation
        assert resolution.strategy_name == "three-way+ours"
        unresolved = ThreeWayStrategy().resolve(conflict)
        assert not unresolved.resolved

    def test_field_merge_unions_authors_for_same_version(self, sample_citation):
        ours = sample_citation.with_changes(authors=("A", "B"))
        theirs = sample_citation.with_changes(authors=("B", "C"), doi="10.5281/zenodo.9")
        conflict = CitationConflict(path="/x", ours=ours, theirs=theirs)
        resolution = FieldMergeStrategy().resolve(conflict)
        assert resolution.citation.authors == ("A", "B", "C")
        assert resolution.citation.doi == "10.5281/zenodo.9"

    def test_field_merge_falls_back_to_newest_for_different_versions(self, conflict, sample_citation):
        resolution = FieldMergeStrategy().resolve(conflict)
        assert resolution.resolved and resolution.citation == sample_citation

    def test_both_changed_property(self, sample_citation, other_citation):
        no_base = CitationConflict(path="/x", ours=sample_citation, theirs=other_citation)
        assert no_base.both_changed
        with_base = CitationConflict(
            path="/x", ours=sample_citation, theirs=other_citation, base=sample_citation
        )
        assert not with_base.both_changed

    def test_registry(self):
        assert set(available_strategies()) == {"ask", "ours", "theirs", "newest", "three-way", "field-merge"}
        assert isinstance(strategy_by_name("newest"), NewestStrategy)
        with pytest.raises(CitationError):
            strategy_by_name("majority-vote")
